// Package model provides the analytic cost model for GPT-like transformer
// models: per-layer parameter counts, mixed-precision memory footprints,
// activation sizes, and FLOP counts. These are exactly the per-layer
// quantities the Mobius MIP partition algorithm consumes (Table 2 of the
// paper), and the workloads of Table 3.
package model

import (
	"fmt"

	"mobius/internal/hw"
)

// LayerKind distinguishes the three layer shapes of a GPT model.
type LayerKind int

// Layer kinds.
const (
	// KindEmbedding is the token + position embedding.
	KindEmbedding LayerKind = iota
	// KindBlock is one transformer block (attention + MLP + layernorms).
	KindBlock
	// KindHead is the final layernorm + untied LM head projection.
	KindHead
)

func (k LayerKind) String() string {
	switch k {
	case KindEmbedding:
		return "embedding"
	case KindBlock:
		return "block"
	case KindHead:
		return "head"
	}
	return fmt.Sprintf("LayerKind(%d)", int(k))
}

// Config describes a GPT-like model and its training microbatch, matching
// the columns of Table 3.
type Config struct {
	Name string
	// Layers is the number of transformer blocks.
	Layers int
	// Hidden is the model dimension.
	Hidden int
	// Heads is the number of attention heads.
	Heads int
	// VocabSize is the tokenizer vocabulary size.
	VocabSize int
	// SeqLen is the training sequence length (512 in the paper).
	SeqLen int
	// MicrobatchSize is the per-microbatch sample count.
	MicrobatchSize int
}

// Table 3 model configurations. Parameter counts are derived from the
// architecture (12·h²·L for blocks plus untied embedding/head); the names
// follow the paper's labels.
var (
	// GPT3B: 64 layers, hidden 2048, 32 heads, microbatch 2.
	GPT3B = Config{Name: "3B", Layers: 64, Hidden: 2048, Heads: 32, VocabSize: 50257, SeqLen: 512, MicrobatchSize: 2}
	// GPT8B: 40 layers, hidden 4096, 32 heads, microbatch 2.
	GPT8B = Config{Name: "8B", Layers: 40, Hidden: 4096, Heads: 32, VocabSize: 50257, SeqLen: 512, MicrobatchSize: 2}
	// GPT15B: 40 layers, hidden 5120, 64 heads, microbatch 1.
	GPT15B = Config{Name: "15B", Layers: 40, Hidden: 5120, Heads: 64, VocabSize: 50257, SeqLen: 512, MicrobatchSize: 1}
	// GPT51B: 50 layers, hidden 9216, 80 heads, microbatch 1.
	GPT51B = Config{Name: "51B", Layers: 50, Hidden: 9216, Heads: 80, VocabSize: 50257, SeqLen: 512, MicrobatchSize: 1}
)

// Table3 lists the four evaluation models in paper order.
func Table3() []Config { return []Config{GPT3B, GPT8B, GPT15B, GPT51B} }

// Bytes-per-element constants for mixed-precision training (§3.1): FP16
// parameters and gradients on GPU; FP32 master weights plus Adam moments
// (12 bytes/param) stay in DRAM.
const (
	FP16Bytes       = 2
	FP32Bytes       = 4
	OptimBytesPerP  = 12 // fp32 master + Adam m + v
	StateBytesPerP  = 16 // fp16 param + fp16 grad + optimizer state
	ActElemBytes    = 2  // fp16 activations
	blockParamConst = 13 // per-hidden bias/layernorm terms in a block
)

// WithMicrobatch returns a copy of the config with a new microbatch size.
func (c Config) WithMicrobatch(mbs int) Config {
	c.MicrobatchSize = mbs
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Layers <= 0 || c.Hidden <= 0 || c.Heads <= 0 || c.VocabSize <= 0 || c.SeqLen <= 0 || c.MicrobatchSize <= 0 {
		return fmt.Errorf("model %q: all dimensions must be positive: %+v", c.Name, c)
	}
	// Note: head divisibility is deliberately not required here — the
	// paper's own 51B config (hidden 9216, 80 heads) does not divide
	// evenly, and the analytic cost model does not depend on head size.
	return nil
}

// Layer is one vertical slice of the model: the unit of the partition
// problem. Layers are ordered embedding, blocks, head.
type Layer struct {
	Kind  LayerKind
	Index int // position in the model, 0-based
	cfg   Config
}

// Layers returns the model's layer sequence: embedding, Layers blocks,
// head.
func (c Config) LayerSeq() []Layer {
	out := make([]Layer, 0, c.Layers+2)
	out = append(out, Layer{Kind: KindEmbedding, Index: 0, cfg: c})
	for i := 0; i < c.Layers; i++ {
		out = append(out, Layer{Kind: KindBlock, Index: i + 1, cfg: c})
	}
	out = append(out, Layer{Kind: KindHead, Index: c.Layers + 1, cfg: c})
	return out
}

// Params returns the layer's parameter count.
func (l Layer) Params() int64 {
	h := int64(l.cfg.Hidden)
	switch l.Kind {
	case KindEmbedding:
		return int64(l.cfg.VocabSize)*h + int64(l.cfg.SeqLen)*h
	case KindBlock:
		// Attention (4h²+4h) + MLP (8h²+5h) + 2 layernorms (4h).
		return 12*h*h + blockParamConst*h
	case KindHead:
		// Final layernorm + untied vocabulary projection.
		return int64(l.cfg.VocabSize)*h + 2*h
	}
	return 0
}

// ParamBytesFP16 returns the layer's FP16 parameter footprint, the unit
// swapped between DRAM and GPU memory by Mobius (§3.1).
func (l Layer) ParamBytesFP16() float64 { return float64(l.Params()) * FP16Bytes }

// GradBytesFP16 returns the layer's FP16 gradient footprint.
func (l Layer) GradBytesFP16() float64 { return float64(l.Params()) * FP16Bytes }

// OptimStateBytes returns the DRAM-resident optimizer state footprint.
func (l Layer) OptimStateBytes() float64 { return float64(l.Params()) * OptimBytesPerP }

// ActivationOutBytes returns the boundary activation a layer passes to its
// successor for one microbatch — the inter-stage transfer unit of the
// Mobius pipeline. The head emits only a scalar loss.
func (l Layer) ActivationOutBytes(mbs int) float64 {
	if l.Kind == KindHead {
		return 0
	}
	return float64(mbs) * float64(l.cfg.SeqLen) * float64(l.cfg.Hidden) * ActElemBytes
}

// WorkingBytes returns the transient GPU memory needed while computing
// the layer on one microbatch with activation checkpointing: attention
// score matrices plus a few hidden-sized buffers (and the logit buffer for
// the head).
func (l Layer) WorkingBytes(mbs int) float64 {
	m, s, h := float64(mbs), float64(l.cfg.SeqLen), float64(l.cfg.Hidden)
	switch l.Kind {
	case KindEmbedding:
		return 2 * m * s * h * ActElemBytes
	case KindBlock:
		scores := m * float64(l.cfg.Heads) * s * s * ActElemBytes
		buffers := 8 * m * s * h * ActElemBytes // qkv, mlp intermediate (4h), residuals
		return scores + buffers
	case KindHead:
		logits := m * s * float64(l.cfg.VocabSize) * ActElemBytes
		return logits + 2*m*s*h*ActElemBytes
	}
	return 0
}

// RetainedActivationBytes returns the activation memory a layer must
// keep per microbatch when training WITHOUT checkpointing [17]: every
// intermediate tensor of the layer survives until its backward pass.
// With checkpointing only the boundary activation (ActivationOutBytes)
// is kept and the rest is recomputed.
func (l Layer) RetainedActivationBytes(mbs int) float64 {
	m, s, h := float64(mbs), float64(l.cfg.SeqLen), float64(l.cfg.Hidden)
	switch l.Kind {
	case KindEmbedding:
		return m * s * h * ActElemBytes
	case KindBlock:
		scores := m * float64(l.cfg.Heads) * s * s * ActElemBytes
		// qkv (3h), attention out, ln outputs (2), mlp intermediate (4h),
		// gelu output (4h), residuals — ~14 hidden-sized tensors.
		buffers := 14 * m * s * h * ActElemBytes
		return scores + buffers
	case KindHead:
		return m * s * float64(l.cfg.VocabSize) * ActElemBytes
	}
	return 0
}

// FwdFLOPs returns the forward FLOPs for one microbatch.
func (l Layer) FwdFLOPs(mbs int) float64 {
	m, s, h := float64(mbs), float64(l.cfg.SeqLen), float64(l.cfg.Hidden)
	switch l.Kind {
	case KindEmbedding:
		return m * s * h // table lookups + add, negligible
	case KindBlock:
		// 2 FLOPs per param per token on the 12h² matmuls, plus the
		// attention score/value matmuls (4·m·s²·h).
		return 24*m*s*h*h + 4*m*s*s*h
	case KindHead:
		return 2 * m * s * h * float64(l.cfg.VocabSize)
	}
	return 0
}

// BwdFLOPs returns the backward FLOPs for one microbatch, including the
// recomputation forward pass implied by activation checkpointing [17]:
// backward ≈ 2× forward, plus 1× forward recompute.
func (l Layer) BwdFLOPs(mbs int) float64 { return 3 * l.FwdFLOPs(mbs) }

// BwdFLOPsNoRecompute returns the backward FLOPs when all activations
// are retained (no checkpointing): ≈ 2× forward.
func (l Layer) BwdFLOPsNoRecompute(mbs int) float64 { return 2 * l.FwdFLOPs(mbs) }

// FwdTime returns the simulated forward duration on the given GPU.
func (l Layer) FwdTime(g hw.GPUSpec, mbs int) float64 { return l.FwdFLOPs(mbs) / g.Effective() }

// BwdTime returns the simulated backward duration on the given GPU.
func (l Layer) BwdTime(g hw.GPUSpec, mbs int) float64 { return l.BwdFLOPs(mbs) / g.Effective() }

// SimilarityKey groups layers that share memory footprint and compute
// time, implementing the paper's layer-similarity profiling optimisation
// (§3.2): all transformer blocks collapse into one group.
func (l Layer) SimilarityKey() string {
	return fmt.Sprintf("%s/h%d/s%d", l.Kind, l.cfg.Hidden, l.cfg.SeqLen)
}

// TotalParams returns the model's parameter count.
func (c Config) TotalParams() int64 {
	var total int64
	for _, l := range c.LayerSeq() {
		total += l.Params()
	}
	return total
}

// ParamBytesFP16 returns the FP16 footprint of the full model.
func (c Config) ParamBytesFP16() float64 { return float64(c.TotalParams()) * FP16Bytes }

// ParamBytesFP32 returns the FP32 footprint of the full model; the paper's
// "model size" reference line in Figure 6 counts FP32 parameter bytes.
func (c Config) ParamBytesFP32() float64 { return float64(c.TotalParams()) * FP32Bytes }

// ModelStatesBytes returns the full mixed-precision training state (fp16
// params + fp16 grads + fp32 master + Adam moments), the quantity that
// must fit in aggregate GPU memory for all-in-GPU systems like GPipe.
func (c Config) ModelStatesBytes() float64 { return float64(c.TotalParams()) * StateBytesPerP }

// ActivationBytesPerMicrobatch returns the checkpointed boundary
// activation footprint of the whole model for one microbatch.
func (c Config) ActivationBytesPerMicrobatch() float64 {
	var total float64
	for _, l := range c.LayerSeq() {
		total += l.ActivationOutBytes(c.MicrobatchSize)
	}
	return total
}

func (c Config) String() string {
	return fmt.Sprintf("%s (%.1fB params, %d layers, hidden %d, heads %d, mbs %d)",
		c.Name, float64(c.TotalParams())/1e9, c.Layers, c.Hidden, c.Heads, c.MicrobatchSize)
}
