package model

import (
	"testing"
	"testing/quick"

	"mobius/internal/hw"
)

func TestTable3ParameterCounts(t *testing.T) {
	// The derived parameter counts must land near the paper's labels.
	// (The "15B" config derives to ~13B from Table 3's architecture; see
	// EXPERIMENTS.md for the discrepancy note.)
	cases := []struct {
		cfg      Config
		minB     float64
		maxB     float64
		wantMbs  int
		wantHead int
	}{
		{GPT3B, 3.0, 3.9, 2, 32},
		{GPT8B, 8.0, 8.9, 2, 32},
		{GPT15B, 12.5, 15.5, 1, 64},
		{GPT51B, 50.0, 52.5, 1, 80},
	}
	for _, c := range cases {
		b := float64(c.cfg.TotalParams()) / 1e9
		if b < c.minB || b > c.maxB {
			t.Errorf("%s: %.2fB params, want within [%.1f, %.1f]", c.cfg.Name, b, c.minB, c.maxB)
		}
		if c.cfg.MicrobatchSize != c.wantMbs {
			t.Errorf("%s: microbatch %d, want %d", c.cfg.Name, c.cfg.MicrobatchSize, c.wantMbs)
		}
		if c.cfg.Heads != c.wantHead {
			t.Errorf("%s: heads %d, want %d", c.cfg.Name, c.cfg.Heads, c.wantHead)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
		}
	}
}

func TestLayerSeqStructure(t *testing.T) {
	seq := GPT8B.LayerSeq()
	if len(seq) != GPT8B.Layers+2 {
		t.Fatalf("layer count: got %d want %d", len(seq), GPT8B.Layers+2)
	}
	if seq[0].Kind != KindEmbedding || seq[len(seq)-1].Kind != KindHead {
		t.Fatal("layer sequence must start with embedding and end with head")
	}
	for i := 1; i < len(seq)-1; i++ {
		if seq[i].Kind != KindBlock {
			t.Fatalf("layer %d: got %v want block", i, seq[i].Kind)
		}
		if seq[i].Index != i {
			t.Fatalf("layer %d: index %d", i, seq[i].Index)
		}
	}
}

func TestBlockParamFormula(t *testing.T) {
	seq := GPT8B.LayerSeq()
	block := seq[1]
	h := int64(GPT8B.Hidden)
	want := 12*h*h + 13*h
	if block.Params() != want {
		t.Fatalf("block params: got %d want %d", block.Params(), want)
	}
}

func TestSimilarityKeyGroupsBlocks(t *testing.T) {
	seq := GPT15B.LayerSeq()
	keys := map[string]int{}
	for _, l := range seq {
		keys[l.SimilarityKey()]++
	}
	// Embedding, block, head: exactly three groups.
	if len(keys) != 3 {
		t.Fatalf("similarity groups: got %d want 3 (%v)", len(keys), keys)
	}
	blockKey := seq[1].SimilarityKey()
	if keys[blockKey] != GPT15B.Layers {
		t.Fatalf("block group size: got %d want %d", keys[blockKey], GPT15B.Layers)
	}
}

func TestActivationBoundaryBytes(t *testing.T) {
	l := GPT8B.LayerSeq()[1]
	want := float64(2) * 512 * 4096 * 2 // mbs * seq * hidden * fp16
	if got := l.ActivationOutBytes(2); got != want {
		t.Fatalf("activation bytes: got %g want %g", got, want)
	}
	head := GPT8B.LayerSeq()[GPT8B.Layers+1]
	if head.ActivationOutBytes(2) != 0 {
		t.Fatal("head must emit no boundary activation")
	}
}

func TestFLOPsMonotonicInMicrobatch(t *testing.T) {
	f := func(mbsRaw uint8) bool {
		mbs := int(mbsRaw%8) + 1
		l := GPT8B.LayerSeq()[1]
		return l.FwdFLOPs(mbs+1) > l.FwdFLOPs(mbs) && l.BwdFLOPs(mbs) == 3*l.FwdFLOPs(mbs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestComputeTimesPositiveAndOrdered(t *testing.T) {
	for _, cfg := range Table3() {
		for _, l := range cfg.LayerSeq() {
			fw := l.FwdTime(hw.RTX3090Ti, cfg.MicrobatchSize)
			bw := l.BwdTime(hw.RTX3090Ti, cfg.MicrobatchSize)
			if fw < 0 || bw <= 0 {
				t.Fatalf("%s %v: non-positive time", cfg.Name, l.Kind)
			}
			if bw < fw {
				t.Fatalf("%s %v: backward faster than forward", cfg.Name, l.Kind)
			}
		}
	}
}

func TestModelStatesDominateGPUMemory(t *testing.T) {
	// The premise of heterogeneous-memory training: every Table 3 model
	// except 3B exceeds 4x24 GB of aggregate GPU memory in full
	// mixed-precision state.
	agg := 4 * hw.RTX3090Ti.MemBytes
	if GPT3B.ModelStatesBytes() > agg {
		t.Errorf("3B must fit in aggregate GPU memory (GPipe baseline trains it)")
	}
	for _, cfg := range []Config{GPT8B, GPT15B, GPT51B} {
		if cfg.ModelStatesBytes() <= agg {
			t.Errorf("%s must exceed aggregate GPU memory", cfg.Name)
		}
	}
}

func TestWithMicrobatch(t *testing.T) {
	c := GPT8B.WithMicrobatch(8)
	if c.MicrobatchSize != 8 || GPT8B.MicrobatchSize != 2 {
		t.Fatal("WithMicrobatch must copy")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := GPT8B
	bad.Layers = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero layers must fail")
	}
	bad2 := GPT8B
	bad2.MicrobatchSize = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero microbatch must fail")
	}
}

func TestBlockFitsInGPU(t *testing.T) {
	// Table 3's note: a 9216-hidden block is the largest a single GPU can
	// hold during training. Its fp16 params + grads + working set must
	// fit in 24 GB.
	l := GPT51B.LayerSeq()[1]
	need := l.ParamBytesFP16() + l.GradBytesFP16() + l.WorkingBytes(1)
	if need > hw.RTX3090Ti.MemBytes {
		t.Fatalf("51B block does not fit on a 3090-Ti: need %g", need)
	}
}

func TestStringIncludesName(t *testing.T) {
	if s := GPT51B.String(); len(s) == 0 || s[:3] != "51B" {
		t.Fatalf("unexpected String: %q", s)
	}
}
