package profile

import (
	"testing"

	"mobius/internal/hw"
	"mobius/internal/model"
)

func TestSimilarityCompressesProfiling(t *testing.T) {
	with, err := Run(model.GPT15B, hw.RTX3090Ti, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(model.GPT15B, hw.RTX3090Ti, Options{DisableSimilarity: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.GroupsProfiled != 3 {
		t.Errorf("similarity groups: got %d want 3", with.GroupsProfiled)
	}
	if without.GroupsProfiled != model.GPT15B.Layers+2 {
		t.Errorf("no-similarity groups: got %d want %d", without.GroupsProfiled, model.GPT15B.Layers+2)
	}
	if with.Cost >= without.Cost {
		t.Errorf("similarity must reduce profiling cost: %g >= %g", with.Cost, without.Cost)
	}
	// The measured stats themselves must be identical either way.
	for i := range with.Layers {
		if with.Layers[i] != without.Layers[i] {
			t.Fatalf("layer %d stats differ between modes", i)
		}
	}
}

func TestProfileCoversAllLayers(t *testing.T) {
	p, err := Run(model.GPT8B, hw.RTX3090Ti, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumLayers() != model.GPT8B.Layers+2 {
		t.Fatalf("got %d layers want %d", p.NumLayers(), model.GPT8B.Layers+2)
	}
	for i, l := range p.Layers {
		if l.FwdTime < 0 || l.BwdTime <= 0 || l.ParamBytes <= 0 {
			t.Fatalf("layer %d: non-positive stats %+v", i, l)
		}
	}
}

func TestSimilarModelsHaveSimilarProfilingCost(t *testing.T) {
	// Figure 12's observation: the 8B and 15B models profile in similar
	// time because only distinct layers are measured and their hidden
	// sizes are close; the 51B model costs more but far less than
	// proportionally to its parameter count.
	p8, _ := Run(model.GPT8B, hw.RTX3090Ti, Options{})
	p15, _ := Run(model.GPT15B, hw.RTX3090Ti, Options{})
	p51, _ := Run(model.GPT51B, hw.RTX3090Ti, Options{})
	if p15.Cost > 4*p8.Cost {
		t.Errorf("8B (%g) and 15B (%g) profiling cost should be within a small factor", p8.Cost, p15.Cost)
	}
	ratioCost := p51.Cost / p8.Cost
	ratioParams := float64(model.GPT51B.TotalParams()) / float64(model.GPT8B.TotalParams())
	if ratioCost > ratioParams {
		t.Errorf("profiling cost ratio (%g) must grow slower than params ratio (%g)", ratioCost, ratioParams)
	}
}

func TestRepeatsScaleCost(t *testing.T) {
	p3, _ := Run(model.GPT8B, hw.RTX3090Ti, Options{Repeats: 3})
	p6, _ := Run(model.GPT8B, hw.RTX3090Ti, Options{Repeats: 6})
	if p6.Cost <= p3.Cost {
		t.Fatal("more repeats must cost more")
	}
}

func TestRunRejectsInvalidConfig(t *testing.T) {
	bad := model.GPT8B
	bad.Layers = -1
	if _, err := Run(bad, hw.RTX3090Ti, Options{}); err == nil {
		t.Fatal("expected error for invalid config")
	}
}

func TestAggregates(t *testing.T) {
	p, _ := Run(model.GPT8B, hw.RTX3090Ti, Options{})
	if p.TotalParamBytes() != model.GPT8B.ParamBytesFP16() {
		t.Errorf("param bytes: %g vs %g", p.TotalParamBytes(), model.GPT8B.ParamBytesFP16())
	}
	if p.TotalFwdTime() <= 0 || p.TotalBwdTime() <= p.TotalFwdTime() {
		t.Error("aggregate times inconsistent")
	}
}

func TestProfileDefaultRepeats(t *testing.T) {
	p0, _ := Run(model.GPT8B, hw.RTX3090Ti, Options{})
	p3, _ := Run(model.GPT8B, hw.RTX3090Ti, Options{Repeats: 3})
	if p0.Cost != p3.Cost {
		t.Fatalf("default repeats must be 3: %g vs %g", p0.Cost, p3.Cost)
	}
}

func TestProfileGPUAffectsTimesNotSizes(t *testing.T) {
	slow, _ := Run(model.GPT8B, hw.RTX3090Ti, Options{})
	fast, _ := Run(model.GPT8B, hw.A100, Options{})
	for i := range slow.Layers {
		if slow.Layers[i].ParamBytes != fast.Layers[i].ParamBytes {
			t.Fatal("param bytes must be GPU-independent")
		}
		if slow.Layers[i].FwdTime <= fast.Layers[i].FwdTime {
			t.Fatal("a faster GPU must profile faster layers")
		}
	}
}
