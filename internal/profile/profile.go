// Package profile measures per-layer statistics needed by the MIP
// partition algorithm: forward/backward compute time and memory
// footprints. It implements the paper's layer-similarity optimisation
// (§3.2): identical layers are grouped and only one representative per
// group is profiled, which shrinks profiling time from O(model) to
// O(distinct layers). The returned profiling cost model drives the
// Figure 12 overhead experiment.
package profile

import (
	"fmt"

	"mobius/internal/hw"
	"mobius/internal/model"
)

// LayerStats is the measured profile of one model layer.
type LayerStats struct {
	Layer model.Layer
	// FwdTime and BwdTime are per-microbatch compute durations in
	// seconds on the profiled GPU.
	FwdTime float64
	BwdTime float64
	// ParamBytes is the FP16 parameter footprint swapped by Mobius.
	ParamBytes float64
	// GradBytes is the FP16 gradient footprint.
	GradBytes float64
	// ActOutBytes is the boundary activation passed downstream per
	// microbatch.
	ActOutBytes float64
	// WorkingBytes is the transient compute footprint per microbatch.
	WorkingBytes float64
}

// Profile is the result of profiling a model on a GPU spec.
type Profile struct {
	Model model.Config
	GPU   hw.GPUSpec
	// Layers holds one entry per model layer, in model order.
	Layers []LayerStats
	// GroupsProfiled is the number of distinct layer groups measured.
	GroupsProfiled int
	// Cost is the simulated wall-clock time spent profiling: each
	// profiled group runs Repeats forward+backward iterations with
	// prefetching disabled, plus one parameter upload (§3.2, Figure 12).
	Cost float64
}

// Options control profiling.
type Options struct {
	// Repeats is the number of measured iterations per layer group
	// (default 3).
	Repeats int
	// DisableSimilarity profiles every layer individually, the slow
	// baseline the paper's similarity optimisation avoids.
	DisableSimilarity bool
}

// Run profiles cfg for the given GPU.
func Run(cfg model.Config, gpu hw.GPUSpec, opts Options) (*Profile, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("profile: %w", err)
	}
	repeats := opts.Repeats
	if repeats <= 0 {
		repeats = 3
	}

	p := &Profile{Model: cfg, GPU: gpu}
	mbs := cfg.MicrobatchSize
	profiled := map[string]bool{}
	for _, l := range cfg.LayerSeq() {
		st := LayerStats{
			Layer:        l,
			FwdTime:      l.FwdTime(gpu, mbs),
			BwdTime:      l.BwdTime(gpu, mbs),
			ParamBytes:   l.ParamBytesFP16(),
			GradBytes:    l.GradBytesFP16(),
			ActOutBytes:  l.ActivationOutBytes(mbs),
			WorkingBytes: l.WorkingBytes(mbs),
		}
		p.Layers = append(p.Layers, st)

		key := l.SimilarityKey()
		if opts.DisableSimilarity {
			key = fmt.Sprintf("layer-%d", l.Index)
		}
		if profiled[key] {
			continue
		}
		profiled[key] = true
		p.GroupsProfiled++
		// Measured iterations plus one un-prefetched parameter upload.
		p.Cost += float64(repeats)*(st.FwdTime+st.BwdTime) + st.ParamBytes/gpu.LinkBW
	}
	return p, nil
}

// NumLayers returns the number of layers in the profile.
func (p *Profile) NumLayers() int { return len(p.Layers) }

// TotalParamBytes returns the FP16 parameter bytes across all layers.
func (p *Profile) TotalParamBytes() float64 {
	var t float64
	for _, l := range p.Layers {
		t += l.ParamBytes
	}
	return t
}

// TotalFwdTime returns the sum of per-layer forward times for one
// microbatch.
func (p *Profile) TotalFwdTime() float64 {
	var t float64
	for _, l := range p.Layers {
		t += l.FwdTime
	}
	return t
}

// TotalBwdTime returns the sum of per-layer backward times for one
// microbatch.
func (p *Profile) TotalBwdTime() float64 {
	var t float64
	for _, l := range p.Layers {
		t += l.BwdTime
	}
	return t
}
