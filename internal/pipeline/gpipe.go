package pipeline

import (
	"fmt"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/partition"
	"mobius/internal/profile"
	"mobius/internal/sim"
	"mobius/internal/trace"
)

// GPipeConfig describes a GPipe training step: classical pipeline
// parallelism with exactly one stage per GPU and the full mixed-precision
// training state resident in GPU memory (no heterogeneous memory).
type GPipeConfig struct {
	Profile      *profile.Profile
	Microbatches int
	// SystemName labels the result; "GPipe" by default. "DeepSpeed
	// (pipeline)" uses the same execution model in the paper's
	// evaluation.
	SystemName string
	// Faults, when non-nil, degrades the simulated hardware (see the
	// fault package).
	Faults *fault.Spec
	// Checksums enables end-to-end transfer integrity (see
	// MobiusConfig.Checksums).
	Checksums sim.ChecksumConfig
}

// gpipeStateFactor converts a stage's FP16 parameter bytes into the full
// resident training state: fp16 params+grads (2x) plus fp32 master and
// Adam moments (6x more halves), i.e. 16 bytes per parameter = 8x the
// FP16 parameter footprint.
const gpipeStateFactor = 8

// RunGPipe simulates one GPipe training step: the model is split into one
// balanced stage per GPU, parameters stay resident, and only boundary
// activations (and their gradients) move between GPUs.
func RunGPipe(topo *hw.Topology, cfg GPipeConfig) (*Result, error) {
	if cfg.Profile == nil {
		return nil, fmt.Errorf("pipeline: profile is required")
	}
	name := cfg.SystemName
	if name == "" {
		name = "GPipe"
	}
	N := topo.NumGPUs()
	M := cfg.Microbatches
	if M <= 0 {
		M = N
	}

	srv, err := hw.Build(topo)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	srv.Sim.Observe(rec)
	res := &Result{System: name, Recorder: rec, Server: srv}
	srv.Sim.Checksums = cfg.Checksums
	if err := applyFaults(srv, cfg.Faults, res); err != nil {
		return nil, err
	}

	part, err := partition.Balanced(partition.Params{
		Profile:   cfg.Profile,
		NumGPUs:   N,
		GPUMem:    topo.GPUMem(0),
		Bandwidth: 1, // unused by Balanced
	}, N)
	if err != nil {
		return nil, err
	}
	stg := part.Stages

	// OOM check: full training state plus retained boundary checkpoints
	// for every in-flight microbatch must fit. The budget is the simulated
	// pool's capacity, not the nominal topology's, so fault-injected memory
	// pressure surfaces here as a structured OOM.
	for j, st := range stg {
		need := st.ParamBytes*gpipeStateFactor + st.WorkingBytes + float64(M)*(st.ActInBytes+st.ActOutBytes)
		avail := topo.GPUMem(j)
		if pool := srv.PoolByName(fmt.Sprintf("gpu%d.mem", j)); pool != nil && pool.Capacity() < avail {
			avail = pool.Capacity()
		}
		if need > avail {
			res.OOM = true
			if avail < topo.GPUMem(j) {
				res.OOMCause = fmt.Sprintf("memory pressure: stage %d needs %.3g bytes but gpu%d.mem capacity is %.3g", j, need, j, avail)
			}
			return res, nil
		}
	}

	s := srv.Sim
	F := make([][]*sim.Task, N)
	B := make([][]*sim.Task, N)
	for j := range F {
		F[j] = make([]*sim.Task, M)
		B[j] = make([]*sim.Task, M)
	}
	tag := func(kind trace.Kind, gpu, peer, stage, mb int) trace.Tag {
		return trace.Tag{Kind: kind, GPU: gpu, PeerGPU: peer, Stage: stage, Microbatch: mb}
	}

	// Forward.
	for j := 0; j < N; j++ {
		for m := 0; m < M; m++ {
			var deps []*sim.Task
			if m > 0 {
				deps = append(deps, F[j][m-1])
			}
			if j > 0 {
				act := s.Transfer(fmt.Sprintf("A%d.%d", j, m), srv.DownloadEngine[j-1],
					srv.Route(hw.GPUEnd(j-1), hw.GPUEnd(j)), stg[j].ActInBytes, prioActivation, F[j-1][m])
				act.Tag = tag(trace.KindActTransfer, j-1, j, j, m)
				deps = append(deps, act)
			}
			F[j][m] = s.Compute(fmt.Sprintf("F%d.%d", j, m), srv.ComputeEngines[j], stg[j].FwdTime, deps...)
			F[j][m].Tag = tag(trace.KindCompute, j, -1, j, m)
		}
	}

	// Backward.
	for j := N - 1; j >= 0; j-- {
		for m := 0; m < M; m++ {
			var deps []*sim.Task
			if m > 0 {
				deps = append(deps, B[j][m-1])
			}
			if j == N-1 {
				deps = append(deps, F[N-1][M-1])
			} else {
				gr := s.Transfer(fmt.Sprintf("G%d.%d", j, m), srv.DownloadEngine[j+1],
					srv.Route(hw.GPUEnd(j+1), hw.GPUEnd(j)), stg[j].ActOutBytes, prioActivation, B[j+1][m])
				gr.Tag = tag(trace.KindActTransfer, j+1, j, j, m)
				deps = append(deps, gr)
			}
			B[j][m] = s.Compute(fmt.Sprintf("B%d.%d", j, m), srv.ComputeEngines[j], stg[j].BwdTime, deps...)
			B[j][m].Tag = tag(trace.KindCompute, j, -1, j, m)
		}
	}

	if err := finishRun(srv, res); err != nil {
		return nil, err
	}
	return res, nil
}
