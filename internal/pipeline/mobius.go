package pipeline

import (
	"fmt"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/partition"
	"mobius/internal/sim"
	"mobius/internal/trace"
)

// MobiusConfig describes one Mobius training step.
type MobiusConfig struct {
	Partition *partition.Partition
	Mapping   *mapping.Mapping
	// Microbatches is M; the paper sets M equal to the GPU count.
	Microbatches int
	// DisablePrefetchPriority drops the paper's priority policy for
	// concurrent prefetches (an ablation knob); uploads then share
	// bandwidth max-min fair.
	DisablePrefetchPriority bool
	// DisablePrefetch turns off stage prefetching entirely (an ablation
	// knob): uploads start only after the previous stage is freed, so no
	// communication hides under computation.
	DisablePrefetch bool
	// Faults, when non-nil, degrades the simulated hardware (see the
	// fault package). The schedule itself is unchanged — faults model
	// unplanned degradation of the machine the plan targeted.
	Faults *fault.Spec
	// Checksums enables end-to-end transfer integrity: every transfer
	// pays a per-byte checksum cost, detected corruptions retransmit
	// within a bounded budget, and exhaustion halts the step with a
	// structured sim.CorruptionError.
	Checksums sim.ChecksumConfig
	// Checkpoint, when non-nil, appends a periodic state snapshot to the
	// step: each stage's proportional share of the snapshot flows from
	// DRAM to the checkpoint destination right after that stage's
	// gradient flush, overlapping with the remaining backward work like
	// any other background transfer.
	Checkpoint *CheckpointWrite
}

// CheckpointWrite sizes and routes the per-step state snapshot emitted
// when MobiusConfig.Checkpoint is set.
type CheckpointWrite struct {
	// Bytes is the full snapshot: fp32 master params plus optimizer
	// state, i.e. model.Config.ModelStatesBytes().
	Bytes float64
	// ToSSD routes the write to the NVMe tier ("ssd" resource) instead
	// of a second DRAM region over the DRAM bus.
	ToSSD bool
}

// MobiusStep is a built Mobius schedule: the topology instantiated on a
// simulator and the step DAG constructed. One step can be executed many
// times under different fault and checksum configurations — each Run
// rewinds the simulator (sim.Reset) instead of rebuilding topology and
// DAG, the shape the chaos harness and experiment grids rely on.
type MobiusStep struct {
	srv *hw.Server
	rec *trace.Recorder
	// oom records that the static memory pre-check failed; the DAG was
	// never built and every Run reports OOM.
	oom bool
}

// Server exposes the simulated hardware backing the step.
func (st *MobiusStep) Server() *hw.Server { return st.srv }

// RunMobius simulates one Mobius training step on the topology and
// returns the measured result. It is BuildMobius followed by a single
// Run; callers executing the same schedule repeatedly should build once
// and call Run per configuration.
func RunMobius(topo *hw.Topology, cfg MobiusConfig) (*Result, error) {
	st, err := BuildMobius(topo, cfg)
	if err != nil {
		return nil, err
	}
	return st.Run(cfg.Faults, cfg.Checksums)
}

// BuildMobius constructs the simulated server and the step DAG for the
// configuration. The DAG shape depends only on the partition, mapping,
// microbatch count, prefetch knobs and checkpoint clause; the Faults and
// Checksums fields of cfg are ignored here — they are per-Run inputs.
//
// The emitted DAG follows §3.1: stages live in DRAM; each GPU executes
// its stages in pipeline order, swapping them in ahead of time where
// reserved memory allows (prefetch), offloading boundary activations
// after forward, re-uploading parameters and checkpoints before backward,
// and flushing gradients to DRAM for the CPU optimizer at the end of each
// stage's backward.
func BuildMobius(topo *hw.Topology, cfg MobiusConfig) (*MobiusStep, error) {
	if cfg.Partition == nil || cfg.Mapping == nil {
		return nil, fmt.Errorf("pipeline: partition and mapping are required")
	}
	S := len(cfg.Partition.Stages)
	N := topo.NumGPUs()
	M := cfg.Microbatches
	if M <= 0 {
		M = N
	}
	if len(cfg.Mapping.Perm) != N {
		return nil, fmt.Errorf("pipeline: mapping is for %d GPUs, topology has %d", len(cfg.Mapping.Perm), N)
	}

	srv, err := hw.Build(topo)
	if err != nil {
		return nil, err
	}
	rec := trace.NewRecorder()
	srv.Sim.Observe(rec)
	st := &MobiusStep{srv: srv, rec: rec}

	stg := cfg.Partition.Stages
	gpuOf := func(j int) int { return cfg.Mapping.GPUOf(j) }
	gpuMem := func(j int) float64 { return topo.GPUMem(gpuOf(j)) }
	totalParam := 0.0
	for _, st := range stg {
		totalParam += st.ParamBytes
	}

	// OOM pre-check (constraint 4). The check is static, so the step is
	// built DAG-less and every Run reports OOM.
	for j := 0; j < S; j++ {
		if stg[j].MemFwd() > gpuMem(j) || stg[j].MemBwd() > gpuMem(j) {
			st.oom = true
			return st, nil
		}
	}

	uploadPrio := func(j int) int {
		if cfg.DisablePrefetchPriority {
			return prioUploadBase
		}
		return prioUploadBase + cfg.Mapping.UploadPriority(j)
	}

	// The DAG streams out through a StreamBuilder: dependencies are staged
	// one at a time (same order the old variadic calls listed them, so the
	// emitted schedule is bitwise-identical), stage×microbatch handles
	// live in flat arrays, and names format through a reused buffer.
	sb := NewStreamBuilder(srv.Sim, S, M)

	tag := func(kind trace.Kind, gpu, peer, stage, mb int) trace.Tag {
		return trace.Tag{Kind: kind, GPU: gpu, PeerGPU: peer, Stage: stage, Microbatch: mb}
	}

	// ---- Forward pass ----
	for j := 0; j < S; j++ {
		g := gpuOf(j)
		up := srv.UploadEngines[g]
		mem := srv.GPUMems[g]
		dramToGPU := srv.Route(hw.DRAMEnd, hw.GPUEnd(g))

		// Stage swap-in with prefetch. The prefetchable share is bounded
		// by the memory left beside the previous stage on this GPU
		// (constraint 5); the overlap window (constraint 6) emerges from
		// the simulation itself.
		var ready *sim.Task
		if j < N {
			// First-round stages upload at step start.
			alloc := sb.Alloc(sb.NameJ("allocF", j, ""), mem, stg[j].MemFwd())
			sb.Dep(alloc)
			xfer := sb.Transfer(sb.NameJ("C", j, ""), up, dramToGPU, stg[j].UploadFwd(), uploadPrio(j))
			xfer.Tag = tag(trace.KindParamUpload, g, -1, j, -1)
			ready = xfer
		} else {
			prev := stg[j-N]
			// Reserve whatever memory fits beside the previous stage
			// (constraint 5) and prefetch the matching share of the
			// upload; the rest waits for the previous stage to be freed.
			resv := minf(stg[j].MemFwd(), maxf(0, gpuMem(j)-prev.MemFwd()))
			if cfg.DisablePrefetch {
				resv = 0
			}
			pf := stg[j].UploadFwd() * resv / stg[j].MemFwd()
			// Prefetch starts once the previous stage has begun computing
			// (its first microbatch forward is the observable trigger).
			sb.Dep(sb.F(j-N, 0))
			preAlloc := sb.Alloc(sb.NameJ("allocPreF", j, ""), mem, resv)
			sb.Dep(preAlloc)
			preXfer := sb.Transfer(sb.NameJ("C", j, ".pre"), up, dramToGPU, pf, uploadPrio(j))
			preXfer.Tag = tag(trace.KindParamUpload, g, -1, j, -1)
			sb.Dep(sb.FreeF(j - N))
			restAlloc := sb.Alloc(sb.NameJ("allocRestF", j, ""), mem, stg[j].MemFwd()-resv)
			sb.Dep(restAlloc).Dep(preXfer)
			restXfer := sb.Transfer(sb.NameJ("C", j, ".rest"), up, dramToGPU, stg[j].UploadFwd()-pf, uploadPrio(j))
			restXfer.Tag = tag(trace.KindParamUpload, g, -1, j, -1)
			sb.Dep(preXfer).Dep(restXfer)
			ready = sb.After(sb.NameJ("readyF", j, ""))
		}

		for m := 0; m < M; m++ {
			var act *sim.Task
			if j > 0 {
				// Boundary activation from the upstream stage, staged
				// through DRAM on commodity servers.
				src := gpuOf(j - 1)
				sb.Dep(sb.F(j-1, m))
				act = sb.Transfer(sb.NameJM("A", j, m), srv.DownloadEngine[src],
					srv.Route(hw.GPUEnd(src), hw.GPUEnd(g)), stg[j].ActInBytes, prioActivation)
				act.Tag = tag(trace.KindActTransfer, src, g, j, m)
			}
			sb.Dep(ready)
			if m > 0 {
				sb.Dep(sb.F(j, m-1))
			}
			sb.Dep(act)
			f := sb.Compute(sb.NameJM("F", j, m), srv.ComputeEngines[g], stg[j].FwdTime)
			f.Tag = tag(trace.KindCompute, g, -1, j, m)
			sb.SetF(j, m, f)

			// Offload the boundary checkpoint for the backward pass.
			if stg[j].ActOutBytes > 0 {
				sb.Dep(f)
				off := sb.Transfer(sb.NameJM("O", j, m), srv.DownloadEngine[g],
					srv.Route(hw.GPUEnd(g), hw.DRAMEnd), stg[j].ActOutBytes, prioGradFlush)
				off.Tag = tag(trace.KindActOffload, g, -1, j, m)
				sb.SetOff(j, m, off)
			}
		}

		// Free the stage after its last microbatch (and its offloads) —
		// except the final round, which stays resident for backward.
		if j < S-N {
			sb.Dep(sb.F(j, M-1))
			for m := 0; m < M; m++ {
				sb.Dep(sb.Off(j, m))
			}
			sb.SetFreeF(j, sb.Free(sb.NameJ("freeF", j, ""), mem, stg[j].MemFwd()))
		}
	}

	// ---- Backward pass ----
	for j := S - 1; j >= 0; j-- {
		g := gpuOf(j)
		up := srv.UploadEngines[g]
		down := srv.DownloadEngine[g]
		mem := srv.GPUMems[g]
		dramToGPU := srv.Route(hw.DRAMEnd, hw.GPUEnd(g))

		var ready *sim.Task
		if j >= S-N {
			// Still resident from forward; grow to the backward footprint.
			extra := stg[j].MemBwd() - stg[j].MemFwd()
			sb.Dep(sb.F(j, M-1))
			ready = sb.Alloc(sb.NameJ("gradAllocB", j, ""), mem, maxf(0, extra))
		} else {
			nxt := stg[j+N] // executes before this stage in backward order
			resv := minf(stg[j].MemBwd(), maxf(0, gpuMem(j)-nxt.MemBwd()))
			if cfg.DisablePrefetch {
				resv = 0
			}
			// The pre/rest pair carries the parameters; checkpointed
			// activations are re-uploaded per microbatch below.
			pb := stg[j].ParamBytes * resv / stg[j].MemBwd()
			sb.Dep(sb.B(j+N, 0))
			preAlloc := sb.Alloc(sb.NameJ("allocPreB", j, ""), mem, resv)
			sb.Dep(preAlloc)
			preXfer := sb.Transfer(sb.NameJ("CB", j, ".pre"), up, dramToGPU, pb, uploadPrio(j))
			preXfer.Tag = tag(trace.KindParamUpload, g, -1, j, -1)
			sb.Dep(sb.FreeB(j + N))
			restAlloc := sb.Alloc(sb.NameJ("allocRestB", j, ""), mem, stg[j].MemBwd()-resv)
			sb.Dep(restAlloc).Dep(preXfer)
			restXfer := sb.Transfer(sb.NameJ("CB", j, ".rest"), up, dramToGPU, stg[j].ParamBytes-pb, uploadPrio(j))
			restXfer.Tag = tag(trace.KindParamUpload, g, -1, j, -1)
			sb.Dep(preXfer).Dep(restXfer)
			ready = sb.After(sb.NameJ("readyB", j, ""))
		}

		for m := 0; m < M; m++ {
			var gr, actUp *sim.Task
			if j < S-1 {
				// Activation gradient from the downstream stage.
				src := gpuOf(j + 1)
				sb.Dep(sb.B(j+1, m))
				gr = sb.Transfer(sb.NameJM("G", j, m), srv.DownloadEngine[src],
					srv.Route(hw.GPUEnd(src), hw.GPUEnd(g)), stg[j].ActOutBytes, prioActivation)
				gr.Tag = tag(trace.KindActTransfer, src, g, j, m)
			}
			// Re-upload the input checkpoint for recomputation.
			if j > 0 && stg[j].ActInBytes > 0 && sb.Off(j-1, m) != nil {
				sb.Dep(sb.Off(j-1, m)).Dep(ready)
				actUp = sb.Transfer(sb.NameJM("AU", j, m), up, dramToGPU, stg[j].ActInBytes, prioActivation)
				actUp.Tag = tag(trace.KindActUpload, g, -1, j, m)
			}
			sb.Dep(ready)
			if m > 0 {
				sb.Dep(sb.B(j, m-1))
			}
			if j == S-1 {
				// Constraint (11): backward starts after forward drains.
				sb.Dep(sb.F(S-1, M-1))
			} else {
				sb.Dep(gr)
			}
			sb.Dep(actUp)
			bt := sb.Compute(sb.NameJM("B", j, m), srv.ComputeEngines[g], stg[j].BwdTime)
			bt.Tag = tag(trace.KindCompute, g, -1, j, m)
			sb.SetB(j, m, bt)
		}

		// Flush accumulated gradients to DRAM for the CPU optimizer, then
		// free the stage.
		sb.Dep(sb.B(j, M-1))
		flush := sb.Transfer(sb.NameJ("GF", j, ""), down, srv.Route(hw.GPUEnd(g), hw.DRAMEnd),
			stg[j].GradBytes, prioGradFlush)
		flush.Tag = tag(trace.KindGradFlush, g, -1, j, -1)
		sb.Dep(flush)
		sb.SetFreeB(j, sb.Free(sb.NameJ("freeB", j, ""), mem, stg[j].MemBwd()))

		// Snapshot the stage's share of the training state once its
		// gradients have landed in DRAM (the CPU optimizer updates the
		// master copy there): a host-side write that never touches GPU
		// links, contending only on the DRAM bus (or the SSD path).
		if cfg.Checkpoint != nil && cfg.Checkpoint.Bytes > 0 {
			dst := hw.DRAMEnd
			if cfg.Checkpoint.ToSSD {
				dst = hw.SSDEnd
			}
			share := cfg.Checkpoint.Bytes / float64(S)
			if totalParam > 0 {
				share = cfg.Checkpoint.Bytes * stg[j].ParamBytes / totalParam
			}
			sb.Dep(flush)
			ck := sb.Transfer(sb.NameJ("CK", j, ""), nil, srv.Route(hw.DRAMEnd, dst), share, prioGradFlush)
			ck.Tag = tag(trace.KindCheckpoint, -1, -1, j, -1)
		}
	}

	return st, nil
}

// Run executes the built step under the given fault and checksum
// configuration and returns the measured result. The simulator is reset
// first — task states, resource/engine/pool state, previously injected
// faults and the trace recorder are cleared while the topology and DAG
// survive — so repeated Runs replay the schedule bitwise instead of
// paying construction again. Results from earlier Runs keep their scalar
// fields, but share the step's recorder and server: read trace data
// before the next Run.
func (st *MobiusStep) Run(faults *fault.Spec, checksums sim.ChecksumConfig) (*Result, error) {
	st.rec.Reset()
	st.srv.Sim.Reset()
	res := &Result{System: "Mobius", Recorder: st.rec, Server: st.srv}
	st.srv.Sim.Checksums = checksums
	if err := applyFaults(st.srv, faults, res); err != nil {
		return nil, err
	}
	if st.oom {
		res.OOM = true
		return res, nil
	}
	if err := finishRun(st.srv, res); err != nil {
		return nil, err
	}
	return res, nil
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
