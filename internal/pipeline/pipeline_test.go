package pipeline

import (
	"math"
	"testing"

	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/profile"
	"mobius/internal/trace"
)

func planMobius(t *testing.T, cfg model.Config, topo *hw.Topology, scheme string, stages int) MobiusConfig {
	t.Helper()
	prof, err := profile.Run(cfg, topo.GPUs[0].Spec, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := partition.Params{
		Profile:   prof,
		NumGPUs:   topo.NumGPUs(),
		GPUMem:    topo.GPUMem(0) * 0.92,
		Bandwidth: 13.1e9,
	}
	var part *partition.Partition
	if stages > 0 {
		part, err = partition.Balanced(params, stages)
	} else {
		part, _, err = partition.MIP(params, partition.MIPOptions{})
	}
	if err != nil {
		t.Fatal(err)
	}
	var m *mapping.Mapping
	if scheme == mapping.SchemeSequential {
		m, err = mapping.Sequential(topo, part.NumStages())
	} else {
		m, err = mapping.Cross(topo, part.NumStages())
	}
	if err != nil {
		t.Fatal(err)
	}
	return MobiusConfig{Partition: part, Mapping: m, Microbatches: topo.NumGPUs()}
}

func TestMobiusRunsToCompletion(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	cfg := planMobius(t, model.GPT15B, topo, mapping.SchemeCross, 8)
	res, err := RunMobius(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.OOM {
		t.Fatal("15B must not OOM under Mobius")
	}
	if res.StepTime <= 0 || math.IsInf(res.StepTime, 1) {
		t.Fatalf("step time %g", res.StepTime)
	}
	if len(res.Recorder.Computes) != 2*8*4 {
		t.Fatalf("computes: got %d want %d", len(res.Recorder.Computes), 2*8*4)
	}
}

func TestMobiusTrafficNearPaperAnalysis(t *testing.T) {
	// §3.1: Mobius moves ~1.5x the FP32 parameter bytes per step (two
	// FP16 parameter copies + one FP16 gradient copy), plus small
	// activation traffic — Figure 6 measures ~1.8x. Our schedule keeps
	// the final round of stages resident between forward and backward,
	// which discounts (N/S)x of the second parameter copy, so with S=2N
	// the ratio lands slightly below 1.5x.
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	for _, mc := range []model.Config{model.GPT8B, model.GPT15B} {
		cfg := planMobius(t, mc, topo, mapping.SchemeCross, 8)
		res, err := RunMobius(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.TotalTraffic() / mc.ParamBytesFP32()
		if ratio < 1.1 || ratio > 2.3 {
			t.Errorf("%s: traffic ratio %.2fx, want ~1.2-1.8x of FP32 model size", mc.Name, ratio)
		}
	}
}

func TestMobiusMemoryNeverExceeded(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	cfg := planMobius(t, model.GPT15B, topo, mapping.SchemeCross, 8)
	res, err := RunMobius(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for g, pool := range res.Server.GPUMems {
		if pool.Peak() > topo.GPUMem(g) {
			t.Errorf("gpu %d: peak %g exceeds capacity %g", g, pool.Peak(), topo.GPUMem(g))
		}
		if pool.Used() > 1e-6 {
			t.Errorf("gpu %d: %g bytes leaked at step end", g, pool.Used())
		}
	}
}

func TestMobiusPipelineOrderRespected(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	cfg := planMobius(t, model.GPT8B, topo, mapping.SchemeCross, 8)
	res, err := RunMobius(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct per-(stage, microbatch) compute end times and check the
	// pipeline dependencies: F(j,m) ends after F(j-1,m); B(j,m) after
	// B(j+1,m); every B after every F on the final stage.
	type key struct{ stage, mb int }
	fEnd := map[key]float64{}
	i := 0
	for _, c := range res.Recorder.Computes {
		if c.Tag.Stage >= 0 && c.Tag.Microbatch >= 0 {
			fEnd[key{c.Tag.Stage, c.Tag.Microbatch}] = math.Max(fEnd[key{c.Tag.Stage, c.Tag.Microbatch}], c.End)
			i++
		}
	}
	if i == 0 {
		t.Fatal("no tagged computes")
	}
	// The first compute record per (stage, mb) is the forward.
	fwd := map[key]float64{}
	for _, c := range res.Recorder.Computes {
		k := key{c.Tag.Stage, c.Tag.Microbatch}
		if _, ok := fwd[k]; !ok {
			fwd[k] = c.End
		}
	}
	for k, end := range fwd {
		if k.stage == 0 {
			continue
		}
		up, ok := fwd[key{k.stage - 1, k.mb}]
		if !ok {
			t.Fatalf("missing upstream compute for %v", k)
		}
		if up >= end {
			t.Errorf("F(%d,%d) ended at %g before upstream %g", k.stage, k.mb, end, up)
		}
	}
}

func TestGPipeTrainsSmallModelOnly(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	prof3, _ := profile.Run(model.GPT3B, hw.RTX3090Ti, profile.Options{})
	res3, err := RunGPipe(topo, GPipeConfig{Profile: prof3, Microbatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res3.OOM {
		t.Fatal("GPipe must train the 3B model (the paper's largest GPipe-trainable)")
	}
	if res3.StepTime <= 0 {
		t.Fatal("non-positive step time")
	}
	for _, big := range []model.Config{model.GPT8B, model.GPT15B, model.GPT51B} {
		prof, _ := profile.Run(big, hw.RTX3090Ti, profile.Options{})
		res, err := RunGPipe(topo, GPipeConfig{Profile: prof, Microbatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !res.OOM {
			t.Errorf("GPipe must OOM on %s", big.Name)
		}
	}
}

func TestMobiusCompetitiveWithGPipeWhenModelFits(t *testing.T) {
	// On the 3B model (the largest GPipe can hold) Mobius must stay in
	// the same ballpark as GPipe: its stage uploads hide under compute,
	// and running two stages per GPU even shrinks pipeline fill bubbles
	// (interleaved pipelining), so either may win by a modest margin.
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	prof, _ := profile.Run(model.GPT3B, hw.RTX3090Ti, profile.Options{})
	gp, err := RunGPipe(topo, GPipeConfig{Profile: prof, Microbatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	cfg := planMobius(t, model.GPT3B, topo, mapping.SchemeCross, 8)
	mb, err := RunMobius(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ratio := mb.StepTime / gp.StepTime
	if ratio > 1.5 || ratio < 0.5 {
		t.Errorf("Mobius/GPipe ratio %.2f on a resident model, want within [0.5, 1.5]", ratio)
	}
}

func TestCrossMappingNoSlowerThanSequential(t *testing.T) {
	// Figure 10: cross mapping reduces per-step time on a topology with
	// shared root complexes.
	topo := hw.Commodity(hw.RTX3090Ti, 4, 4)
	seqCfg := planMobius(t, model.GPT15B, topo, mapping.SchemeSequential, 16)
	crossCfg := planMobius(t, model.GPT15B, topo, mapping.SchemeCross, 16)
	seq, err := RunMobius(topo, seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := RunMobius(topo, crossCfg)
	if err != nil {
		t.Fatal(err)
	}
	if cross.StepTime > seq.StepTime*1.02 {
		t.Errorf("cross mapping (%g) slower than sequential (%g)", cross.StepTime, seq.StepTime)
	}
}

func TestMobiusOOMWhenStageTooBig(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	prof, _ := profile.Run(model.GPT51B, hw.RTX3090Ti, profile.Options{})
	part, err := partition.FromBoundaries(prof, []int{prof.NumLayers()}, "giant")
	if err != nil {
		t.Fatal(err)
	}
	m, _ := mapping.Sequential(topo, 1)
	res, err := RunMobius(topo, MobiusConfig{Partition: part, Mapping: m, Microbatches: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OOM {
		t.Fatal("oversized stage must OOM")
	}
}

func TestMobiusDeterministic(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 1, 3)
	cfg := planMobius(t, model.GPT8B, topo, mapping.SchemeCross, 8)
	a, err := RunMobius(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMobius(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.StepTime != b.StepTime {
		t.Fatalf("non-deterministic: %g vs %g", a.StepTime, b.StepTime)
	}
}

func TestMobiusScalesAcrossGPUCounts(t *testing.T) {
	// Figure 14 sanity: throughput per step must not degrade with more
	// GPUs (the batch grows with GPU count, so per-sample time shrinks).
	var prev float64
	for _, n := range []int{2, 4, 8} {
		topo := hw.Commodity(hw.RTX3090Ti, n/2, n-n/2)
		cfg := planMobius(t, model.GPT15B.WithMicrobatch(1), topo, mapping.SchemeCross, 4*n)
		res, err := RunMobius(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.OOM {
			t.Fatalf("OOM at %d GPUs", n)
		}
		perSample := res.StepTime / float64(n) // M = n microbatches
		if prev > 0 && perSample > prev*1.1 {
			t.Errorf("%d GPUs: per-sample time %g regressed vs %g", n, perSample, prev)
		}
		prev = perSample
	}
}

// TestSimulatorMatchesAnalyticEvaluator cross-validates the two
// execution models: the analytic earliest-start schedule (the MIP's view
// of the world) and the discrete-event simulation should agree within a
// modest factor — the simulator adds engine serialization, transfer
// latency and gradient flushes the analytic model ignores.
func TestSimulatorMatchesAnalyticEvaluator(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	prof, err := profile.Run(model.GPT15B, hw.RTX3090Ti, profile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	params := partition.Params{
		Profile:   prof,
		NumGPUs:   4,
		GPUMem:    topo.GPUMem(0) * 0.92,
		Bandwidth: 13.1e9,
		Latency:   topo.TransferLatency,
	}
	for _, stages := range []int{4, 8, 12} {
		part, err := partition.Balanced(params, stages)
		if err != nil {
			t.Fatal(err)
		}
		predicted, err := partition.StepTime(params, part)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := mapping.Cross(topo, stages)
		res, err := RunMobius(topo, MobiusConfig{Partition: part, Mapping: m, Microbatches: 4})
		if err != nil {
			t.Fatal(err)
		}
		ratio := res.StepTime / predicted
		if ratio < 0.8 || ratio > 1.6 {
			t.Errorf("S=%d: simulated %.2fs vs predicted %.2fs (ratio %.2f)", stages, res.StepTime, predicted, ratio)
		}
	}
}

// TestMobiusTrafficAccountingIdentity checks the byte accounting of the
// emitted schedule against the closed-form expectation from the
// partition: uploads, activation hops, offloads, checkpoint re-uploads
// and gradient flushes must all match exactly.
func TestMobiusTrafficAccountingIdentity(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	cfg := planMobius(t, model.GPT15B, topo, mapping.SchemeCross, 8)
	res, err := RunMobius(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	S := len(cfg.Partition.Stages)
	N := topo.NumGPUs()
	M := cfg.Microbatches

	var wantUpload, wantAct, wantOffload, wantActUp, wantFlush float64
	for j, st := range cfg.Partition.Stages {
		wantUpload += st.UploadFwd()
		if j < S-N {
			wantUpload += st.UploadBwd(M) - float64(M)*st.ActInBytes // params only
			wantActUp += float64(M) * st.ActInBytes                  // emitted separately
		} else if j > 0 {
			wantActUp += float64(M) * st.ActInBytes
		}
		if j > 0 {
			wantAct += 2 * float64(M) * st.ActInBytes // fwd act + bwd act-grad
		}
		wantOffload += float64(M) * st.ActOutBytes
		wantFlush += st.GradBytes
	}

	byKind := map[trace.Kind]float64{}
	for _, f := range res.Recorder.Flows {
		byKind[f.Tag.Kind] += f.Bytes
	}
	check := func(kind trace.Kind, want float64) {
		t.Helper()
		got := byKind[kind]
		if math.Abs(got-want) > 1e-3*math.Max(1, want) {
			t.Errorf("%v: got %.3f GB want %.3f GB", kind, got/1e9, want/1e9)
		}
	}
	check(trace.KindParamUpload, wantUpload)
	check(trace.KindActTransfer, wantAct)
	check(trace.KindActOffload, wantOffload)
	check(trace.KindActUpload, wantActUp)
	check(trace.KindGradFlush, wantFlush)
}
