package pipeline

import (
	"strconv"

	"mobius/internal/sim"
)

// StreamBuilder is the streaming construction layer BuildMobius emits
// through. It wraps sim.Builder (staged dependencies, slab-backed task
// and successor storage) with the two things a pipeline schedule needs
// on top:
//
//   - compact struct-of-arrays task storage: the stage×microbatch
//     forward/backward/offload handles live in three flat arrays indexed
//     by j*M+m instead of S separately allocated inner slices, and the
//     per-stage free tasks in two more — six allocations total however
//     large the schedule;
//   - allocation-lean task names: one reusable byte buffer and strconv
//     formatting replace the per-task fmt.Sprintf calls, which at 100k
//     tasks were a measurable slice of construction wall-clock.
//
// At 100k tasks this keeps DAG construction a single-digit fraction of
// step wall-clock instead of dominating it (see EXPERIMENTS.md).
type StreamBuilder struct {
	*sim.Builder
	S, M int

	fwd, bwd, off []*sim.Task // flat [S*M] stage×microbatch handles
	freeF, freeB  []*sim.Task // per-stage frees
	nbuf          []byte      // reusable name-formatting buffer
}

// NewStreamBuilder returns a builder for an S-stage, M-microbatch
// schedule emitting into s.
func NewStreamBuilder(s *sim.Sim, S, M int) *StreamBuilder {
	n := S * M
	return &StreamBuilder{
		Builder: s.NewBuilder(),
		S:       S,
		M:       M,
		fwd:     make([]*sim.Task, n),
		bwd:     make([]*sim.Task, n),
		off:     make([]*sim.Task, n),
		freeF:   make([]*sim.Task, S),
		freeB:   make([]*sim.Task, S),
	}
}

// F and SetF access the forward compute of stage j, microbatch m.
func (sb *StreamBuilder) F(j, m int) *sim.Task     { return sb.fwd[j*sb.M+m] }
func (sb *StreamBuilder) SetF(j, m int, t *sim.Task) { sb.fwd[j*sb.M+m] = t }

// B and SetB access the backward compute of stage j, microbatch m.
func (sb *StreamBuilder) B(j, m int) *sim.Task     { return sb.bwd[j*sb.M+m] }
func (sb *StreamBuilder) SetB(j, m int, t *sim.Task) { sb.bwd[j*sb.M+m] = t }

// Off and SetOff access stage j's activation offload for microbatch m
// (nil when the stage emits no boundary checkpoint).
func (sb *StreamBuilder) Off(j, m int) *sim.Task     { return sb.off[j*sb.M+m] }
func (sb *StreamBuilder) SetOff(j, m int, t *sim.Task) { sb.off[j*sb.M+m] = t }

// FreeF/SetFreeF and FreeB/SetFreeB access the per-stage free tasks.
func (sb *StreamBuilder) FreeF(j int) *sim.Task      { return sb.freeF[j] }
func (sb *StreamBuilder) SetFreeF(j int, t *sim.Task) { sb.freeF[j] = t }
func (sb *StreamBuilder) FreeB(j int) *sim.Task      { return sb.freeB[j] }
func (sb *StreamBuilder) SetFreeB(j int, t *sim.Task) { sb.freeB[j] = t }

// NameJ formats prefix+j+suffix ("allocF3", "CB7.pre") through the
// reusable buffer — one string allocation, no fmt machinery.
func (sb *StreamBuilder) NameJ(prefix string, j int, suffix string) string {
	b := append(sb.nbuf[:0], prefix...)
	b = strconv.AppendInt(b, int64(j), 10)
	b = append(b, suffix...)
	sb.nbuf = b
	return string(b)
}

// NameJM formats prefix+j+"."+m ("F3.7").
func (sb *StreamBuilder) NameJM(prefix string, j, m int) string {
	b := append(sb.nbuf[:0], prefix...)
	b = strconv.AppendInt(b, int64(j), 10)
	b = append(b, '.')
	b = strconv.AppendInt(b, int64(m), 10)
	sb.nbuf = b
	return string(b)
}
