// Package pipeline implements the training-step schedulers that execute
// on the simulated server: the Mobius pipeline (§3.1) — heterogeneous
// memory, multiple stages per GPU, prefetching into reserved memory,
// activation offload and gradient flush — and the GPipe baseline
// (all-in-GPU-memory pipeline parallelism), which also stands in for
// "DeepSpeed with pipeline parallelism" in the evaluation.
package pipeline

import (
	"errors"
	"fmt"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/sim"
	"mobius/internal/trace"
)

// Result is the outcome of simulating one training step.
type Result struct {
	// System labels the scheduler that produced the result.
	System string
	// StepTime is the simulated duration of one training step in seconds.
	StepTime float64
	// OOM reports that the schedule cannot fit in GPU memory; StepTime is
	// meaningless when set.
	OOM bool
	// OOMCause describes a structured OOM surfaced during simulation
	// (fault-injected memory pressure); empty when the pre-run memory
	// check caught the overflow.
	OOMCause string
	// Lost is set when a scheduled permanent failure halted the step
	// mid-flight; StepTime then holds the elapsed time up to detection,
	// not a completed step.
	Lost *sim.ResourceLostError
	// Corruption is set when a transfer exhausted its retransmit budget
	// under end-to-end checksums; like Lost, StepTime holds the elapsed
	// time up to the failed delivery.
	Corruption *sim.CorruptionError
	// Integrity aggregates the step's corruption/checksum accounting
	// (zero-valued when neither checksums nor corruption were configured).
	Integrity sim.IntegrityStats
	// Recorder holds the collected flow/compute records.
	Recorder *trace.Recorder
	// Server exposes the simulated hardware for memory inspection.
	Server *hw.Server
	// Faults records the applied fault injection, nil for nominal runs.
	Faults *fault.Injection
}

// TotalTraffic returns all transferred bytes during the step.
func (r *Result) TotalTraffic() float64 {
	if r.Recorder == nil {
		return 0
	}
	return r.Recorder.TotalBytes(nil)
}

func (r *Result) String() string {
	if r.OOM {
		return fmt.Sprintf("%s: OOM", r.System)
	}
	if r.Lost != nil {
		return fmt.Sprintf("%s: halted at %.3fs (%s)", r.System, r.StepTime, r.Lost)
	}
	if r.Corruption != nil {
		return fmt.Sprintf("%s: halted at %.3fs (%s)", r.System, r.StepTime, r.Corruption)
	}
	return fmt.Sprintf("%s: %.3fs/step, %.2f GB moved", r.System, r.StepTime, r.TotalTraffic()/1e9)
}

// Transfer priority classes. Higher runs first at shared resources.
const (
	prioGradFlush  = 0  // background: gradient flush, activation offload
	prioUploadBase = 10 // stage uploads: base + mapping.UploadPriority
	prioActivation = 10000
)

// applyFaults binds a fault spec to the freshly built server and records
// the injection on the result. A nil or empty spec is a no-op.
func applyFaults(srv *hw.Server, spec *fault.Spec, res *Result) error {
	if spec.Empty() {
		return nil
	}
	inj, err := fault.Apply(srv, spec)
	if err != nil {
		return err
	}
	res.Faults = inj
	return nil
}

// finishRun validates the routed DAG and executes the simulation. A
// structured OOM (fault-injected memory pressure shrank a pool below a
// stage's footprint) degrades the result to OOM instead of failing the
// call; a permanent failure halting the step surfaces as Result.Lost and
// an exhausted retransmit budget as Result.Corruption, both with the
// elapsed time up to detection; every other simulation error — deadlock,
// memory accounting — is returned. The simulator's integrity accounting
// is captured on every path so callers can read retransmit counts and
// silent-corruption exposure even from failed steps.
func finishRun(srv *hw.Server, res *Result) error {
	if err := srv.RouteErr(); err != nil {
		return fmt.Errorf("pipeline: %s schedule: %w", res.System, err)
	}
	end, err := srv.Sim.Run()
	res.Integrity = srv.Sim.Integrity()
	if err != nil {
		var oom *sim.OOMError
		if errors.As(err, &oom) {
			res.OOM = true
			res.OOMCause = oom.Error()
			return nil
		}
		var lost *sim.ResourceLostError
		if errors.As(err, &lost) {
			res.Lost = lost
			res.StepTime = end
			return nil
		}
		var corr *sim.CorruptionError
		if errors.As(err, &corr) {
			res.Corruption = corr
			res.StepTime = end
			return nil
		}
		return fmt.Errorf("pipeline: %s schedule: %w", res.System, err)
	}
	res.StepTime = end
	return nil
}
