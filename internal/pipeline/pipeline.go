// Package pipeline implements the training-step schedulers that execute
// on the simulated server: the Mobius pipeline (§3.1) — heterogeneous
// memory, multiple stages per GPU, prefetching into reserved memory,
// activation offload and gradient flush — and the GPipe baseline
// (all-in-GPU-memory pipeline parallelism), which also stands in for
// "DeepSpeed with pipeline parallelism" in the evaluation.
package pipeline

import (
	"fmt"

	"mobius/internal/hw"
	"mobius/internal/trace"
)

// Result is the outcome of simulating one training step.
type Result struct {
	// System labels the scheduler that produced the result.
	System string
	// StepTime is the simulated duration of one training step in seconds.
	StepTime float64
	// OOM reports that the schedule cannot fit in GPU memory; StepTime is
	// meaningless when set.
	OOM bool
	// Recorder holds the collected flow/compute records.
	Recorder *trace.Recorder
	// Server exposes the simulated hardware for memory inspection.
	Server *hw.Server
}

// TotalTraffic returns all transferred bytes during the step.
func (r *Result) TotalTraffic() float64 {
	if r.Recorder == nil {
		return 0
	}
	return r.Recorder.TotalBytes(nil)
}

func (r *Result) String() string {
	if r.OOM {
		return fmt.Sprintf("%s: OOM", r.System)
	}
	return fmt.Sprintf("%s: %.3fs/step, %.2f GB moved", r.System, r.StepTime, r.TotalTraffic()/1e9)
}

// Transfer priority classes. Higher runs first at shared resources.
const (
	prioGradFlush  = 0  // background: gradient flush, activation offload
	prioUploadBase = 10 // stage uploads: base + mapping.UploadPriority
	prioActivation = 10000
)
