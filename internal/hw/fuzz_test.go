package hw

import "testing"

// FuzzParseSpec ensures the topology-spec parser never panics and that
// every accepted spec yields a valid topology.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{"4", "2+2", "1+3", "4+4", "dc", "dc8", "", "++", "-1", "dc0", "2+0", "9999999999"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := ParseSpec(spec)
		if err != nil {
			return
		}
		if topo.NumGPUs() <= 0 {
			t.Fatalf("accepted %q but produced %d GPUs", spec, topo.NumGPUs())
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("accepted %q but invalid: %v", spec, err)
		}
	})
}
