// Package hw describes GPU server hardware: GPU specifications, PCIe
// topology (root complexes, per-GPU links), NVLink fabrics, and DRAM. It
// builds the matching internal/sim resources and routes transfers between
// endpoints, staging GPU-to-GPU copies through DRAM when GPUDirect P2P is
// unavailable — the defining communication property of commodity GPU
// servers in the Mobius paper (§2.2).
package hw

import (
	"fmt"
	"strings"

	"mobius/internal/sim"
)

// Byte-size and bandwidth units.
const (
	KB = 1e3
	MB = 1e6
	GB = 1e9

	GBps = 1e9 // bytes per second
)

// GPUSpec describes one GPU model (Table 1 of the paper).
type GPUSpec struct {
	Name string
	// MemBytes is the device memory capacity.
	MemBytes float64
	// FP16TFLOPS is the peak mixed-precision tensor throughput, used by
	// the compute cost model together with Efficiency.
	FP16TFLOPS float64
	// Efficiency is the achievable fraction of peak FLOPs for this
	// training stack (model FLOPs utilization). The presets are
	// calibrated against the paper's absolute per-step times; see the
	// comments on RTX3090Ti and V100.
	Efficiency float64
	// LinkBW is the GPU's own PCIe (or NVLink ingress) bandwidth in B/s.
	LinkBW float64
	// PriceUSD is the unit price, for the Figure 15b cost analysis.
	PriceUSD float64
	// P2P reports whether GPUDirect peer-to-peer is supported.
	P2P bool
}

// Effective returns the usable FLOP/s for the compute cost model.
func (g GPUSpec) Effective() float64 { return g.FP16TFLOPS * 1e12 * g.Efficiency }

// Reference GPU specs from Table 1 and the evaluation setup (§4).
var (
	// RTX3090Ti is the commodity GPU of the paper's main testbed:
	// 24 GB memory, no GPUDirect P2P, PCIe 3.0 connectivity. Efficiency
	// is calibrated to the paper's absolute per-step times: small-batch
	// (mbs 1-2, seq 512) eager-mode training with per-stage swap
	// synchronization sustains only a few percent of peak tensor FLOPs.
	RTX3090Ti = GPUSpec{
		Name:       "RTX 3090-Ti",
		MemBytes:   24 * GB,
		FP16TFLOPS: 160,
		Efficiency: 0.05,
		LinkBW:     16 * GBps,
		PriceUSD:   2000,
		P2P:        false,
	}
	// V100 is the data-center GPU of the EC2 P3.8xlarge setup: 16 GB
	// memory, NVLink, GPUDirect P2P. Data-center stacks sustain roughly
	// twice the commodity utilization (faster interconnect removes sync
	// stalls), hence the higher calibrated efficiency.
	V100 = GPUSpec{
		Name:       "V100",
		MemBytes:   16 * GB,
		FP16TFLOPS: 112,
		Efficiency: 0.10,
		LinkBW:     16 * GBps,
		PriceUSD:   10000,
		P2P:        true,
	}
	// A100 appears in Table 1 for the price/performance comparison.
	A100 = GPUSpec{
		Name:       "A100",
		MemBytes:   40 * GB,
		FP16TFLOPS: 312,
		Efficiency: 0.10,
		LinkBW:     32 * GBps,
		PriceUSD:   14000,
		P2P:        true,
	}
	// RTX4090 is a newer commodity option for what-if studies: more
	// compute and PCIe 4.0, still no P2P.
	RTX4090 = GPUSpec{
		Name:       "RTX 4090",
		MemBytes:   24 * GB,
		FP16TFLOPS: 330,
		Efficiency: 0.05,
		LinkBW:     32 * GBps,
		PriceUSD:   1600,
		P2P:        false,
	}
	// A6000 is a workstation card: large memory, no NVLink fabric in
	// commodity chassis.
	A6000 = GPUSpec{
		Name:       "RTX A6000",
		MemBytes:   48 * GB,
		FP16TFLOPS: 155,
		Efficiency: 0.05,
		LinkBW:     32 * GBps,
		PriceUSD:   4500,
		P2P:        false,
	}
)

// GPU is one device instance within a topology.
type GPU struct {
	ID   int
	Spec GPUSpec
	// RootComplex is the index of the CPU root complex this GPU's PCIe
	// link ultimately reaches.
	RootComplex int
}

// Topology is a single server: GPUs grouped under CPU root complexes,
// DRAM, and optionally an all-to-all NVLink fabric.
type Topology struct {
	Name string
	GPUs []GPU
	// RootComplexBW is the usable bandwidth of each CPU root complex in
	// B/s. The paper measures 13.1 GB/s as the maximum on its testbed.
	RootComplexBW []float64
	// DRAMBW is the host memory bandwidth available to DMA in B/s; it is
	// rarely the bottleneck.
	DRAMBW float64
	// DRAMBytes is the host DRAM capacity (1.5 TB on the testbed).
	DRAMBytes float64
	// NVLinkBW is the per-GPU NVLink bandwidth in B/s; zero when the
	// server has no NVLink fabric.
	NVLinkBW float64
	// TransferLatency is the fixed per-transfer setup overhead in
	// seconds (DMA descriptor setup, host staging synchronization,
	// framework launch): commodity no-P2P staging pays more than a
	// data-center direct path.
	TransferLatency float64
	// SSDBW and SSDBytes describe an optional NVMe tier used by the
	// ZeRO-Infinity related-work experiments; zero means no SSD.
	SSDBW    float64
	SSDBytes float64
}

// NumGPUs returns the GPU count.
func (t *Topology) NumGPUs() int { return len(t.GPUs) }

// GPUMem returns the device memory capacity of GPU id.
func (t *Topology) GPUMem(id int) float64 { return t.GPUs[id].Spec.MemBytes }

// SameRootComplex reports whether GPUs a and b share a CPU root complex.
func (t *Topology) SameRootComplex(a, b int) bool {
	return t.GPUs[a].RootComplex == t.GPUs[b].RootComplex
}

// GroupSize returns the number of GPUs under the root complex of GPU id.
func (t *Topology) GroupSize(id int) int {
	rc := t.GPUs[id].RootComplex
	n := 0
	for _, g := range t.GPUs {
		if g.RootComplex == rc {
			n++
		}
	}
	return n
}

// HasP2P reports whether direct GPU-to-GPU transfers are possible (all
// GPUs support GPUDirect P2P and an NVLink fabric exists).
func (t *Topology) HasP2P() bool {
	if t.NVLinkBW <= 0 {
		return false
	}
	for _, g := range t.GPUs {
		if !g.Spec.P2P {
			return false
		}
	}
	return true
}

// Validate checks structural invariants.
func (t *Topology) Validate() error {
	if len(t.GPUs) == 0 {
		return fmt.Errorf("hw: topology %q has no GPUs", t.Name)
	}
	for _, g := range t.GPUs {
		if g.RootComplex < 0 || g.RootComplex >= len(t.RootComplexBW) {
			return fmt.Errorf("hw: GPU %d references root complex %d of %d", g.ID, g.RootComplex, len(t.RootComplexBW))
		}
		if g.Spec.MemBytes <= 0 || g.Spec.Effective() <= 0 || g.Spec.LinkBW <= 0 {
			return fmt.Errorf("hw: GPU %d has a non-positive spec field", g.ID)
		}
	}
	for i, bw := range t.RootComplexBW {
		if bw <= 0 {
			return fmt.Errorf("hw: root complex %d has bandwidth %g", i, bw)
		}
	}
	if t.DRAMBW <= 0 || t.DRAMBytes <= 0 {
		return fmt.Errorf("hw: DRAM must have positive bandwidth and capacity")
	}
	return nil
}

func (t *Topology) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d GPU(s)", t.Name, len(t.GPUs))
	groups := map[int]int{}
	for _, g := range t.GPUs {
		groups[g.RootComplex]++
	}
	fmt.Fprintf(&b, ", %d root complex(es) [", len(t.RootComplexBW))
	for i := range t.RootComplexBW {
		if i > 0 {
			b.WriteByte('+')
		}
		fmt.Fprintf(&b, "%d", groups[i])
	}
	b.WriteByte(']')
	if t.NVLinkBW > 0 {
		fmt.Fprintf(&b, ", NVLink %.0f GB/s", t.NVLinkBW/GB)
	}
	return b.String()
}

// Commodity builds a commodity GPU server: groups[i] GPUs under root
// complex i, all using spec, no NVLink and no P2P routing. The paper's
// topologies are Commodity(spec, 4) ("Topo 4"), Commodity(spec, 2, 2)
// ("Topo 2+2"), Commodity(spec, 1, 3) ("Topo 1+3") and
// Commodity(spec, 4, 4) (the 8-GPU setup of §4.4).
func Commodity(spec GPUSpec, groups ...int) *Topology {
	t := &Topology{
		Name:            topoName(groups),
		DRAMBW:          50 * GBps,
		DRAMBytes:       1.5e12,
		TransferLatency: 5e-3,
	}
	id := 0
	for rc, n := range groups {
		t.RootComplexBW = append(t.RootComplexBW, 13.1*GBps)
		for i := 0; i < n; i++ {
			t.GPUs = append(t.GPUs, GPU{ID: id, Spec: spec, RootComplex: rc})
			id++
		}
	}
	return t
}

// DataCenter builds an NVLink-connected data-center server in the style
// of an EC2 P3.8xlarge: n GPUs of the given spec, each with its own PCIe
// root port (data-center boards do not funnel all GPUs through one root
// complex), plus GPUDirect P2P over NVLink at nvlinkBW per GPU.
func DataCenter(spec GPUSpec, n int, nvlinkBW float64) *Topology {
	t := &Topology{
		Name:            fmt.Sprintf("DC %dx%s", n, spec.Name),
		DRAMBW:          50 * GBps,
		DRAMBytes:       768 * GB,
		NVLinkBW:        nvlinkBW,
		TransferLatency: 1e-3,
	}
	for i := 0; i < n; i++ {
		t.RootComplexBW = append(t.RootComplexBW, 13.1*GBps)
		t.GPUs = append(t.GPUs, GPU{ID: i, Spec: spec, RootComplex: i})
	}
	return t
}

func topoName(groups []int) string {
	parts := make([]string, len(groups))
	for i, g := range groups {
		parts[i] = fmt.Sprintf("%d", g)
	}
	return "Topo " + strings.Join(parts, "+")
}

// Server is a Topology instantiated on a simulator: resources, engines
// and memory pools ready for schedulers to target.
type Server struct {
	Topo *Topology
	Sim  *sim.Sim

	// Per-GPU entities.
	ComputeEngines []*sim.Engine // one compute engine per GPU
	UploadEngines  []*sim.Engine // host-to-device DMA engine per GPU
	DownloadEngine []*sim.Engine // device-to-host DMA engine per GPU
	GPULinks       []*sim.Resource
	GPUMems        []*sim.MemPool

	// Shared entities.
	RootComplexes []*sim.Resource
	DRAMBus       *sim.Resource
	DRAM          *sim.MemPool
	NVLinks       []*sim.Resource // per-GPU NVLink port; nil without NVLink
	SSDBus        *sim.Resource   // nil without an NVMe tier

	// routeErr records the first invalid routing request (e.g. an SSD
	// endpoint on a topology without an NVMe tier). Route used to panic;
	// now schedulers build their DAG unconditionally and check RouteErr
	// before running the simulation.
	routeErr error
}

// RouteErr returns the first routing error recorded by Route, if any.
// Callers that build transfer DAGs must check it before Sim.Run: a failed
// Route returns an empty path, which would otherwise simulate as an
// infinitely fast transfer.
func (srv *Server) RouteErr() error { return srv.routeErr }

func (srv *Server) noteRouteErr(err error) {
	if srv.routeErr == nil {
		srv.routeErr = err
	}
}

// ResourceByName finds a bandwidth resource by its simulator name ("rc0",
// "gpu3.link", "gpu1.nvlink", "drambus", "ssd"). It returns nil when no
// such resource exists on this server. The fault layer uses it to bind
// declarative link-fault specs to concrete resources.
func (srv *Server) ResourceByName(name string) *sim.Resource {
	for _, r := range srv.allResources() {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

// ResourceNames lists the bandwidth resources on this server in a stable
// order, for error messages that must enumerate valid fault targets.
func (srv *Server) ResourceNames() []string {
	rs := srv.allResources()
	names := make([]string, len(rs))
	for i, r := range rs {
		names[i] = r.Name()
	}
	return names
}

func (srv *Server) allResources() []*sim.Resource {
	var rs []*sim.Resource
	rs = append(rs, srv.RootComplexes...)
	rs = append(rs, srv.GPULinks...)
	rs = append(rs, srv.NVLinks...)
	if srv.DRAMBus != nil {
		rs = append(rs, srv.DRAMBus)
	}
	if srv.SSDBus != nil {
		rs = append(rs, srv.SSDBus)
	}
	return rs
}

// PoolByName finds a memory pool by its simulator name ("dram",
// "gpu0.mem"); nil when absent.
func (srv *Server) PoolByName(name string) *sim.MemPool {
	if srv.DRAM != nil && srv.DRAM.Name() == name {
		return srv.DRAM
	}
	for _, p := range srv.GPUMems {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// Build instantiates the topology on a fresh simulator.
func Build(t *Topology) (*Server, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	s := sim.New()
	s.TransferLatency = t.TransferLatency
	srv := &Server{Topo: t, Sim: s}
	for i, bw := range t.RootComplexBW {
		srv.RootComplexes = append(srv.RootComplexes, s.NewResource(fmt.Sprintf("rc%d", i), bw))
	}
	srv.DRAMBus = s.NewResource("drambus", t.DRAMBW)
	srv.DRAM = s.NewMemPool("dram", t.DRAMBytes)
	if t.HasSSD() {
		srv.SSDBus = s.NewResource("ssd", t.SSDBW)
	}
	for _, g := range t.GPUs {
		srv.ComputeEngines = append(srv.ComputeEngines, s.NewEngine(fmt.Sprintf("gpu%d.compute", g.ID)))
		srv.UploadEngines = append(srv.UploadEngines, s.NewEngine(fmt.Sprintf("gpu%d.upload", g.ID)))
		srv.DownloadEngine = append(srv.DownloadEngine, s.NewEngine(fmt.Sprintf("gpu%d.download", g.ID)))
		srv.GPULinks = append(srv.GPULinks, s.NewResource(fmt.Sprintf("gpu%d.link", g.ID), g.Spec.LinkBW))
		srv.GPUMems = append(srv.GPUMems, s.NewMemPool(fmt.Sprintf("gpu%d.mem", g.ID), g.Spec.MemBytes))
		if t.NVLinkBW > 0 {
			srv.NVLinks = append(srv.NVLinks, s.NewResource(fmt.Sprintf("gpu%d.nvlink", g.ID), t.NVLinkBW))
		}
	}
	return srv, nil
}

// Endpoint identifies one side of a transfer: a GPU id or DRAM.
type Endpoint struct {
	gpu int // -1 means DRAM
}

// DRAMEnd is the host-memory endpoint.
var DRAMEnd = Endpoint{gpu: -1}

// GPUEnd returns the endpoint for GPU id.
func GPUEnd(id int) Endpoint { return Endpoint{gpu: id} }

// IsDRAM reports whether the endpoint is host memory.
func (e Endpoint) IsDRAM() bool { return e.gpu == -1 }

// GPU returns the endpoint's GPU id; it panics for DRAM.
func (e Endpoint) GPU() int {
	if e.gpu < 0 {
		panic("hw: DRAM endpoint has no GPU")
	}
	return e.gpu
}

func (e Endpoint) String() string {
	switch {
	case e.gpu == -1:
		return "dram"
	case e.gpu == -2:
		return "ssd"
	}
	return fmt.Sprintf("gpu%d", e.gpu)
}

// Route returns the resource path a transfer from src to dst crosses.
//
// On commodity servers (no GPUDirect P2P) every GPU-to-GPU copy is staged
// through DRAM: it crosses the source GPU link and root complex, the DRAM
// bus, then the destination root complex and GPU link. When both GPUs sit
// under the same root complex the shared element carries weight 2, which
// halves the effective bandwidth — the contention mechanism of §2.2.
//
// With P2P and NVLink, GPU-to-GPU transfers use the NVLink ports only,
// while GPU<->DRAM traffic still crosses PCIe.
//
// Routes go through the simulator's interning path constructor: the few
// distinct hardware paths of a topology are materialized once each, so a
// schedule routing thousands of transfers allocates a handful of shared
// path slices instead of one per transfer.
func (srv *Server) Route(src, dst Endpoint) []sim.PathElem {
	s := srv.Sim
	if src.IsSSD() || dst.IsSSD() {
		other := src
		if other.IsSSD() {
			other = dst
		}
		if srv.SSDBus == nil {
			srv.noteRouteErr(fmt.Errorf("hw: route %v -> %v: topology %q has no SSD tier", src, dst, srv.Topo.Name))
			return nil
		}
		if other.IsSSD() || other.IsDRAM() {
			return s.Path(srv.DRAMBus, srv.SSDBus)
		}
		id := other.GPU()
		rc := srv.RootComplexes[srv.Topo.GPUs[id].RootComplex]
		return s.Path(srv.GPULinks[id], rc, srv.DRAMBus, srv.SSDBus)
	}
	switch {
	case src.IsDRAM() && dst.IsDRAM():
		return s.Path(srv.DRAMBus)
	case src.IsDRAM() != dst.IsDRAM():
		g := src
		if g.IsDRAM() {
			g = dst
		}
		id := g.GPU()
		rc := srv.RootComplexes[srv.Topo.GPUs[id].RootComplex]
		return s.Path(srv.GPULinks[id], rc, srv.DRAMBus)
	default:
		a, b := src.GPU(), dst.GPU()
		if a == b {
			return nil // same-device copy: free
		}
		if srv.Topo.HasP2P() {
			return s.Path(srv.NVLinks[a], srv.NVLinks[b])
		}
		rcA := srv.RootComplexes[srv.Topo.GPUs[a].RootComplex]
		rcB := srv.RootComplexes[srv.Topo.GPUs[b].RootComplex]
		return s.Path(srv.GPULinks[a], rcA, srv.DRAMBus, rcB, srv.GPULinks[b])
	}
}
