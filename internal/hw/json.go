package hw

import (
	"encoding/json"
	"fmt"
)

// topologyJSON is the on-disk description of a custom server, so users
// can model their own machine with cmd/mobius-sim -topo-file.
//
//	{
//	  "name": "my box",
//	  "gpu": {"name": "RTX 3090-Ti", "mem_gb": 24, "fp16_tflops": 160,
//	          "efficiency": 0.05, "link_gbps": 16, "price_usd": 2000},
//	  "groups": [2, 2],
//	  "root_complex_gbps": 13.1,
//	  "dram_gb": 1500,
//	  "transfer_latency_ms": 5,
//	  "nvlink_gbps": 0
//	}
type topologyJSON struct {
	Name              string  `json:"name"`
	GPU               gpuJSON `json:"gpu"`
	Groups            []int   `json:"groups"`
	RootComplexGBps   float64 `json:"root_complex_gbps"`
	DRAMGB            float64 `json:"dram_gb"`
	TransferLatencyMS float64 `json:"transfer_latency_ms"`
	NVLinkGBps        float64 `json:"nvlink_gbps"`
	SSDGBps           float64 `json:"ssd_gbps"`
	SSDGB             float64 `json:"ssd_gb"`
}

type gpuJSON struct {
	Name       string  `json:"name"`
	MemGB      float64 `json:"mem_gb"`
	FP16TFLOPS float64 `json:"fp16_tflops"`
	Efficiency float64 `json:"efficiency"`
	LinkGBps   float64 `json:"link_gbps"`
	PriceUSD   float64 `json:"price_usd"`
	P2P        bool    `json:"p2p"`
}

// ParseJSON builds a topology from a JSON description. Missing optional
// fields fall back to commodity defaults.
func ParseJSON(data []byte) (*Topology, error) {
	var tj topologyJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return nil, fmt.Errorf("hw: bad topology JSON: %w", err)
	}
	if len(tj.Groups) == 0 {
		return nil, fmt.Errorf("hw: topology JSON needs at least one GPU group")
	}
	total := 0
	for _, g := range tj.Groups {
		if g <= 0 {
			return nil, fmt.Errorf("hw: non-positive GPU group in %v", tj.Groups)
		}
		total += g
	}
	if total > maxSpecGPUs {
		return nil, fmt.Errorf("hw: topology JSON exceeds %d GPUs", maxSpecGPUs)
	}

	spec := GPUSpec{
		Name:       orStr(tj.GPU.Name, RTX3090Ti.Name),
		MemBytes:   orF(tj.GPU.MemGB, 24) * GB,
		FP16TFLOPS: orF(tj.GPU.FP16TFLOPS, RTX3090Ti.FP16TFLOPS),
		Efficiency: orF(tj.GPU.Efficiency, RTX3090Ti.Efficiency),
		LinkBW:     orF(tj.GPU.LinkGBps, 16) * GBps,
		PriceUSD:   orF(tj.GPU.PriceUSD, RTX3090Ti.PriceUSD),
		P2P:        tj.GPU.P2P,
	}
	t := Commodity(spec, tj.Groups...)
	if tj.Name != "" {
		t.Name = tj.Name
	}
	if tj.RootComplexGBps > 0 {
		for i := range t.RootComplexBW {
			t.RootComplexBW[i] = tj.RootComplexGBps * GBps
		}
	}
	if tj.DRAMGB > 0 {
		t.DRAMBytes = tj.DRAMGB * GB
	}
	if tj.TransferLatencyMS > 0 {
		t.TransferLatency = tj.TransferLatencyMS / 1000
	}
	if tj.NVLinkGBps > 0 {
		t.NVLinkBW = tj.NVLinkGBps * GBps
	}
	if tj.SSDGBps > 0 {
		t.WithSSD(tj.SSDGBps*GBps, orF(tj.SSDGB, 4000)*GB)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func orStr(v, def string) string {
	if v == "" {
		return def
	}
	return v
}

func orF(v, def float64) float64 {
	if v == 0 {
		return def
	}
	return v
}
