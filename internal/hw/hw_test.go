package hw

import (
	"math"
	"strings"
	"testing"
)

func TestCommodityTopologies(t *testing.T) {
	cases := []struct {
		groups []int
		name   string
		nGPU   int
		nRC    int
	}{
		{[]int{4}, "Topo 4", 4, 1},
		{[]int{2, 2}, "Topo 2+2", 4, 2},
		{[]int{1, 3}, "Topo 1+3", 4, 2},
		{[]int{4, 4}, "Topo 4+4", 8, 2},
	}
	for _, c := range cases {
		topo := Commodity(RTX3090Ti, c.groups...)
		if topo.Name != c.name {
			t.Errorf("name: got %q want %q", topo.Name, c.name)
		}
		if topo.NumGPUs() != c.nGPU {
			t.Errorf("%s: got %d GPUs want %d", c.name, topo.NumGPUs(), c.nGPU)
		}
		if len(topo.RootComplexBW) != c.nRC {
			t.Errorf("%s: got %d RCs want %d", c.name, len(topo.RootComplexBW), c.nRC)
		}
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
		if topo.HasP2P() {
			t.Errorf("%s: commodity topology must not support P2P", c.name)
		}
	}
}

func TestGroupSizeAndSharedRC(t *testing.T) {
	topo := Commodity(RTX3090Ti, 1, 3)
	if got := topo.GroupSize(0); got != 1 {
		t.Errorf("GroupSize(0)=%d want 1", got)
	}
	if got := topo.GroupSize(2); got != 3 {
		t.Errorf("GroupSize(2)=%d want 3", got)
	}
	if topo.SameRootComplex(0, 1) {
		t.Error("GPU 0 and 1 must be under different RCs in Topo 1+3")
	}
	if !topo.SameRootComplex(1, 3) {
		t.Error("GPU 1 and 3 must share an RC in Topo 1+3")
	}
}

func TestDataCenterTopology(t *testing.T) {
	topo := DataCenter(V100, 4, 300*GB)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if !topo.HasP2P() {
		t.Error("data center topology must support P2P")
	}
	if topo.NumGPUs() != 4 {
		t.Errorf("got %d GPUs want 4", topo.NumGPUs())
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	bad := &Topology{Name: "empty", DRAMBW: 1, DRAMBytes: 1}
	if err := bad.Validate(); err == nil {
		t.Error("empty topology must fail validation")
	}
	bad2 := Commodity(RTX3090Ti, 2)
	bad2.GPUs[1].RootComplex = 9
	if err := bad2.Validate(); err == nil {
		t.Error("out-of-range root complex must fail validation")
	}
	bad3 := Commodity(RTX3090Ti, 2)
	bad3.DRAMBW = 0
	if err := bad3.Validate(); err == nil {
		t.Error("zero DRAM bandwidth must fail validation")
	}
}

func TestBuildCreatesEntities(t *testing.T) {
	topo := Commodity(RTX3090Ti, 2, 2)
	srv, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if len(srv.ComputeEngines) != 4 || len(srv.UploadEngines) != 4 || len(srv.DownloadEngine) != 4 {
		t.Fatal("expected one engine triple per GPU")
	}
	if len(srv.GPUMems) != 4 {
		t.Fatal("expected one memory pool per GPU")
	}
	if srv.GPUMems[0].Capacity() != RTX3090Ti.MemBytes {
		t.Errorf("GPU mem capacity: got %g", srv.GPUMems[0].Capacity())
	}
	if len(srv.RootComplexes) != 2 {
		t.Fatal("expected two root complex resources")
	}
	if srv.NVLinks != nil {
		t.Error("commodity server must not have NVLink resources")
	}
}

func TestRouteGPUToDRAM(t *testing.T) {
	srv, err := Build(Commodity(RTX3090Ti, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	p := srv.Route(GPUEnd(0), DRAMEnd)
	if len(p) != 3 {
		t.Fatalf("GPU->DRAM path should have 3 hops, got %d", len(p))
	}
	// Symmetric.
	p2 := srv.Route(DRAMEnd, GPUEnd(0))
	if len(p2) != 3 {
		t.Fatalf("DRAM->GPU path should have 3 hops, got %d", len(p2))
	}
}

func TestRouteStagedCrossRC(t *testing.T) {
	srv, err := Build(Commodity(RTX3090Ti, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// GPU0 (rc0) -> GPU2 (rc1): both RCs at weight 1.
	p := srv.Route(GPUEnd(0), GPUEnd(2))
	if len(p) != 5 {
		t.Fatalf("cross-RC staged path should have 5 hops, got %d", len(p))
	}
	for _, pe := range p {
		if pe.Weight != 1 {
			t.Errorf("cross-RC hop %s weight %g, want 1", pe.Res.Name(), pe.Weight)
		}
	}
}

func TestRouteStagedSameRCDoubleWeight(t *testing.T) {
	srv, err := Build(Commodity(RTX3090Ti, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	// GPU0 -> GPU1 share rc0: the shared RC must carry weight 2.
	p := srv.Route(GPUEnd(0), GPUEnd(1))
	foundDouble := false
	for _, pe := range p {
		if pe.Res == srv.RootComplexes[0] && pe.Weight == 2 {
			foundDouble = true
		}
	}
	if !foundDouble {
		t.Fatal("same-RC staged route must cross the shared root complex twice")
	}
}

func TestRouteP2PUsesNVLink(t *testing.T) {
	srv, err := Build(DataCenter(V100, 4, 300*GB))
	if err != nil {
		t.Fatal(err)
	}
	p := srv.Route(GPUEnd(0), GPUEnd(1))
	if len(p) != 2 {
		t.Fatalf("P2P path should have 2 NVLink hops, got %d", len(p))
	}
	for _, pe := range p {
		if pe.Res.Capacity() != 300*GB {
			t.Errorf("P2P hop capacity %g, want NVLink", pe.Res.Capacity())
		}
	}
	// DRAM traffic still crosses PCIe.
	pd := srv.Route(GPUEnd(0), DRAMEnd)
	if len(pd) != 3 {
		t.Fatalf("DC GPU->DRAM path should have 3 PCIe hops, got %d", len(pd))
	}
}

func TestRouteSameGPUFree(t *testing.T) {
	srv, err := Build(Commodity(RTX3090Ti, 4))
	if err != nil {
		t.Fatal(err)
	}
	if p := srv.Route(GPUEnd(2), GPUEnd(2)); p != nil {
		t.Fatalf("same-GPU route must be free, got %d hops", len(p))
	}
}

func TestStagedTransferBandwidthEndToEnd(t *testing.T) {
	// Two GPUs under one RC: a staged GPU0->GPU1 copy of 13.1 GB should
	// take 2 seconds (13.1 GB/s RC crossed twice) plus the topology's
	// per-transfer setup latency.
	topo := Commodity(RTX3090Ti, 2)
	srv, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	s := srv.Sim
	tr := s.Transfer("staged", nil, srv.Route(GPUEnd(0), GPUEnd(1)), 13.1*GB, 0)
	end, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 2 + topo.TransferLatency
	if math.Abs(end-want) > 1e-6 {
		t.Errorf("staged same-RC transfer: got %gs want %gs", end, want)
	}
	_ = tr
}

func TestEndpointAccessors(t *testing.T) {
	if !DRAMEnd.IsDRAM() {
		t.Error("DRAMEnd must be DRAM")
	}
	g := GPUEnd(3)
	if g.IsDRAM() || g.GPU() != 3 {
		t.Error("GPUEnd(3) accessor mismatch")
	}
	if g.String() != "gpu3" || DRAMEnd.String() != "dram" {
		t.Error("endpoint String mismatch")
	}
	defer func() {
		if recover() == nil {
			t.Error("DRAMEnd.GPU() must panic")
		}
	}()
	_ = DRAMEnd.GPU()
}

func TestEffectiveThroughput(t *testing.T) {
	if RTX3090Ti.Effective() <= 0 {
		t.Fatal("effective throughput must be positive")
	}
	// The paper's pitch: a 3090-Ti has ~2x the FP32 throughput of an A100
	// at ~1/7 the price. Here we check the spec constants keep the price
	// ratio that motivates the paper.
	if RTX3090Ti.PriceUSD*6 > A100.PriceUSD {
		t.Errorf("3090-Ti must be several times cheaper: %v vs %v", RTX3090Ti.PriceUSD, A100.PriceUSD)
	}
}

func TestTopologyString(t *testing.T) {
	s := Commodity(RTX3090Ti, 2, 2).String()
	if s == "" {
		t.Fatal("empty String()")
	}
	dc := DataCenter(V100, 4, 300*GB).String()
	if dc == "" {
		t.Fatal("empty DC String()")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		gpus int
		rcs  int
		p2p  bool
		err  bool
	}{
		{"4", 4, 1, false, false},
		{"2+2", 4, 2, false, false},
		{"1+3", 4, 2, false, false},
		{"4+4", 8, 2, false, false},
		{"dc", 4, 4, true, false},
		{"dc8", 8, 8, true, false},
		{"", 0, 0, false, true},
		{"x+2", 0, 0, false, true},
		{"0+2", 0, 0, false, true},
		{"dcx", 0, 0, false, true},
	}
	for _, c := range cases {
		topo, err := ParseSpec(c.spec)
		if c.err {
			if err == nil {
				t.Errorf("%q: expected error", c.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if topo.NumGPUs() != c.gpus || len(topo.RootComplexBW) != c.rcs || topo.HasP2P() != c.p2p {
			t.Errorf("%q: got %d GPUs %d RCs p2p=%v", c.spec, topo.NumGPUs(), len(topo.RootComplexBW), topo.HasP2P())
		}
	}
}

func TestSSDRouting(t *testing.T) {
	topo := Commodity(RTX3090Ti, 2, 2).WithSSD(CommoditySSDBW, CommoditySSDBytes)
	if !topo.HasSSD() {
		t.Fatal("SSD not attached")
	}
	srv, err := Build(topo)
	if err != nil {
		t.Fatal(err)
	}
	if srv.SSDBus == nil {
		t.Fatal("no SSD resource built")
	}
	// GPU <-> SSD crosses link, RC, DRAM bounce and SSD: 4 hops.
	if p := srv.Route(GPUEnd(0), SSDEnd); len(p) != 4 {
		t.Fatalf("GPU->SSD hops: %d", len(p))
	}
	// DRAM <-> SSD: 2 hops.
	if p := srv.Route(SSDEnd, DRAMEnd); len(p) != 2 {
		t.Fatalf("SSD->DRAM hops: %d", len(p))
	}
	// SSD is the narrowest hop: a 3.5 GB transfer takes ~1s + latency.
	tr := srv.Sim.Transfer("up", nil, srv.Route(SSDEnd, GPUEnd(1)), CommoditySSDBW, 0)
	end, err := srv.Sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + topo.TransferLatency
	if math.Abs(end-want) > 1e-6 {
		t.Fatalf("SSD-bound transfer: got %g want %g", end, want)
	}
	_ = tr
}

func TestRouteWithoutSSDRecordsError(t *testing.T) {
	srv, _ := Build(Commodity(RTX3090Ti, 2))
	if err := srv.RouteErr(); err != nil {
		t.Fatalf("fresh server has route error: %v", err)
	}
	if path := srv.Route(GPUEnd(0), SSDEnd); path != nil {
		t.Fatalf("invalid route returned a path: %v", path)
	}
	err := srv.RouteErr()
	if err == nil {
		t.Fatal("routing to a missing SSD must record an error")
	}
	if !strings.Contains(err.Error(), "SSD") {
		t.Fatalf("route error should name the missing tier: %v", err)
	}
	// The first error sticks even after further bad routes.
	srv.Route(SSDEnd, DRAMEnd)
	if srv.RouteErr() != err {
		t.Fatal("RouteErr must report the first failure")
	}
}

func TestResourceAndPoolLookup(t *testing.T) {
	srv, _ := Build(Commodity(RTX3090Ti, 2, 2))
	for _, name := range []string{"rc0", "rc1", "gpu0.link", "gpu3.link", "drambus"} {
		if srv.ResourceByName(name) == nil {
			t.Fatalf("ResourceByName(%q) = nil", name)
		}
	}
	if srv.ResourceByName("gpu9.link") != nil || srv.ResourceByName("ssd") != nil {
		t.Fatal("lookup of absent resources must return nil")
	}
	if srv.PoolByName("dram") == nil || srv.PoolByName("gpu1.mem") == nil {
		t.Fatal("pool lookup failed")
	}
	if srv.PoolByName("gpu9.mem") != nil {
		t.Fatal("lookup of absent pool must return nil")
	}
	names := srv.ResourceNames()
	if len(names) == 0 {
		t.Fatal("ResourceNames empty")
	}
}

func TestEndpointKindsDistinct(t *testing.T) {
	if SSDEnd.IsDRAM() || DRAMEnd.IsSSD() {
		t.Fatal("endpoint kind confusion")
	}
	if SSDEnd.String() != "ssd" {
		t.Fatalf("ssd endpoint string %q", SSDEnd.String())
	}
}

func TestExtraGPUPresets(t *testing.T) {
	for _, spec := range []GPUSpec{RTX4090, A6000} {
		if spec.P2P {
			t.Errorf("%s: commodity preset must not support P2P", spec.Name)
		}
		topo := Commodity(spec, 2, 2)
		if err := topo.Validate(); err != nil {
			t.Errorf("%s: %v", spec.Name, err)
		}
	}
	if A6000.MemBytes <= RTX3090Ti.MemBytes {
		t.Error("A6000 must have more memory than a 3090-Ti")
	}
}

func TestParseJSON(t *testing.T) {
	data := []byte(`{
		"name": "my box",
		"gpu": {"name": "RTX 4090", "mem_gb": 24, "fp16_tflops": 330, "efficiency": 0.05, "link_gbps": 32},
		"groups": [2, 2],
		"root_complex_gbps": 26,
		"dram_gb": 512,
		"transfer_latency_ms": 3
	}`)
	topo, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if topo.Name != "my box" || topo.NumGPUs() != 4 {
		t.Fatalf("topology: %+v", topo)
	}
	if topo.RootComplexBW[0] != 26*GBps || topo.DRAMBytes != 512*GB {
		t.Fatalf("overrides not applied: %+v", topo)
	}
	if topo.TransferLatency != 0.003 {
		t.Fatalf("latency %g", topo.TransferLatency)
	}
	if topo.GPUs[0].Spec.Name != "RTX 4090" {
		t.Fatalf("gpu spec %+v", topo.GPUs[0].Spec)
	}
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseJSONDefaultsAndErrors(t *testing.T) {
	topo, err := ParseJSON([]byte(`{"groups": [2]}`))
	if err != nil {
		t.Fatal(err)
	}
	if topo.GPUs[0].Spec.Name != RTX3090Ti.Name || topo.GPUMem(0) != 24*GB {
		t.Fatalf("defaults: %+v", topo.GPUs[0].Spec)
	}
	for _, bad := range []string{`{`, `{}`, `{"groups": [0]}`, `{"groups": [999]}`} {
		if _, err := ParseJSON([]byte(bad)); err == nil {
			t.Errorf("%q must fail", bad)
		}
	}
	// SSD attachment.
	withSSD, err := ParseJSON([]byte(`{"groups": [2], "ssd_gbps": 3.5}`))
	if err != nil {
		t.Fatal(err)
	}
	if !withSSD.HasSSD() {
		t.Fatal("SSD not attached")
	}
}
