package hw

import (
	"fmt"
	"strconv"
	"strings"
)

// NVMe defaults for the storage tier referenced by §3.1 and §5: Mobius
// deliberately extends GPU memory with DRAM only, because NVMe bandwidth
// (a few GB/s) bottlenecks training; ZeRO-Infinity offloads model states
// there anyway. These values let the related-work experiments quantify
// that trade-off.
const (
	// CommoditySSDBW is the sustained NVMe bandwidth of a commodity
	// server in B/s.
	CommoditySSDBW = 3.5 * GBps
	// CommoditySSDBytes is the NVMe capacity.
	CommoditySSDBytes = 4e12
)

// WithSSD returns the topology with an NVMe tier attached.
func (t *Topology) WithSSD(bw, capacity float64) *Topology {
	t.SSDBW = bw
	t.SSDBytes = capacity
	return t
}

// HasSSD reports whether the topology has an NVMe tier.
func (t *Topology) HasSSD() bool { return t.SSDBW > 0 && t.SSDBytes > 0 }

// SSDEnd is the NVMe endpoint for routing. Transfers between a GPU and
// the SSD cross the GPU link, its root complex, the DRAM bus (bounce
// buffer) and the SSD itself; DRAM<->SSD transfers cross the DRAM bus
// and the SSD.
var SSDEnd = Endpoint{gpu: -2}

// IsSSD reports whether the endpoint is the NVMe tier.
func (e Endpoint) IsSSD() bool { return e.gpu == -2 }

// ParseSpec parses a topology specification string shared by the CLIs:
//
//	"4"      one root complex with 4 GPUs        (Topo 4)
//	"2+2"    two root complexes with 2 GPUs each (Topo 2+2)
//	"1+3"    asymmetric split                    (Topo 1+3)
//	"dc"     the 4xV100 NVLink data-center server
//	"dc8"    an 8xV100 NVLink server
func ParseSpec(spec string) (*Topology, error) {
	spec = strings.TrimSpace(strings.ToLower(spec))
	if spec == "dc" {
		return DataCenter(V100, 4, 300*GB), nil
	}
	if strings.HasPrefix(spec, "dc") {
		n, err := strconv.Atoi(spec[2:])
		if err != nil || n <= 0 || n > maxSpecGPUs {
			return nil, fmt.Errorf("hw: bad data-center spec %q", spec)
		}
		return DataCenter(V100, n, 300*GB), nil
	}
	var groups []int
	total := 0
	for _, part := range strings.Split(spec, "+") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 || n > maxSpecGPUs {
			return nil, fmt.Errorf("hw: bad topology spec %q (want e.g. 4, 2+2, 1+3, dc)", spec)
		}
		total += n
		if total > maxSpecGPUs {
			return nil, fmt.Errorf("hw: topology spec %q exceeds %d GPUs", spec, maxSpecGPUs)
		}
		groups = append(groups, n)
	}
	if len(groups) == 0 {
		return nil, fmt.Errorf("hw: empty topology spec")
	}
	return Commodity(RTX3090Ti, groups...), nil
}

// maxSpecGPUs bounds parsed topologies: a single server tops out far
// below this, and it keeps hostile specs from allocating absurd
// topologies.
const maxSpecGPUs = 64
