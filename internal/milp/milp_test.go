package milp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"mobius/internal/lp"
)

func TestPureIntegerKnapsack(t *testing.T) {
	// max 8a+11b+6c+4d s.t. 5a+7b+4c+3d <= 14, vars in {0,1}
	// -> min negative; optimum a=b=c=0? Classic answer: a=1,b=1,c=0,d=0 is
	// 19 weight 12; a=0,b=1,c=1,d=1 = 21 weight 14. Optimal 21.
	p := lp.NewProblem(4)
	costs := []float64{-8, -11, -6, -4}
	weights := []float64{5, 7, 4, 3}
	var terms []lp.Term
	for i := range weights {
		p.SetObjectiveCoeff(i, costs[i])
		p.SetBounds(i, 0, 1)
		terms = append(terms, lp.Term{Var: i, Coeff: weights[i]})
	}
	p.AddConstraint(terms, lp.LE, 14)
	res, err := Solve(p, []int{0, 1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal || !res.Proven {
		t.Fatalf("status=%v proven=%v", res.Status, res.Proven)
	}
	if math.Abs(res.Objective-(-21)) > 1e-6 {
		t.Fatalf("objective %g, want -21 (x=%v)", res.Objective, res.X)
	}
}

func TestIntegerRoundingMatters(t *testing.T) {
	// max x+y s.t. 2x+2y <= 5, ints -> LP gives 2.5, MILP must give 2.
	p := lp.NewProblem(2)
	p.SetObjectiveCoeff(0, -1)
	p.SetObjectiveCoeff(1, -1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 2}, {Var: 1, Coeff: 2}}, lp.LE, 5)
	res, err := Solve(p, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-(-2)) > 1e-6 {
		t.Fatalf("objective %g, want -2", res.Objective)
	}
}

func TestMixedIntegerContinuous(t *testing.T) {
	// min y s.t. y >= 1.5n - 1, y >= 4 - 2n, n integer >= 0.
	// n=1 -> y >= max(0.5, 2) = 2; n=2 -> y >= max(2, 0) = 2;
	// continuous n* = 10/7 -> y ~ 1.857; integer optimum 2.
	p := lp.NewProblem(2) // 0: n, 1: y
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]lp.Term{{Var: 1, Coeff: 1}, {Var: 0, Coeff: -1.5}}, lp.GE, -1)
	p.AddConstraint([]lp.Term{{Var: 1, Coeff: 1}, {Var: 0, Coeff: 2}}, lp.GE, 4)
	res, err := Solve(p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Objective-2) > 1e-6 {
		t.Fatalf("objective %g, want 2 (x=%v)", res.Objective, res.X)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := lp.NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	p.SetBounds(0, 0.4, 0.6)
	res, err := Solve(p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Infeasible {
		t.Fatalf("status %v, want infeasible", res.Status)
	}
}

func TestIncumbentSeedPrunes(t *testing.T) {
	p := lp.NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, lp.GE, 3)
	noSeed, err := Solve(p, []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seeded, err := Solve(p, []int{0, 1}, Options{Incumbent: 3.0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noSeed.Objective-3) > 1e-6 {
		t.Fatalf("unseeded objective %g", noSeed.Objective)
	}
	// A seed equal to the optimum still yields a correct (possibly equal)
	// objective; it must never worsen the result.
	if seeded.Status == lp.Optimal && seeded.Objective > noSeed.Objective+1e-6 {
		t.Fatalf("seeded objective %g worse than %g", seeded.Objective, noSeed.Objective)
	}
}

func TestZeroIncumbentIsHonored(t *testing.T) {
	// min x+y s.t. x+y >= 0, integer. The optimum is 0, and an incumbent
	// of exactly 0 is a legitimate known bound: the search must prune
	// everything (nothing beats 0) instead of discarding the seed as
	// "unset" and re-discovering the optimum.
	build := func() *lp.Problem {
		p := lp.NewProblem(2)
		p.SetObjectiveCoeff(0, 1)
		p.SetObjectiveCoeff(1, 1)
		p.SetBounds(0, 0, 4)
		p.SetBounds(1, 0, 4)
		p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, lp.GE, 0)
		return p
	}

	seeded, err := Solve(build(), []int{0, 1}, Options{Incumbent: 0, IncumbentSet: true})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Status == lp.Optimal && seeded.Objective < -1e-9 {
		t.Fatalf("found objective %g below the seeded bound 0", seeded.Objective)
	}
	if seeded.Status == lp.Optimal && seeded.Objective > 1e-9 {
		t.Fatalf("seeded solve returned objective %g worse than the incumbent", seeded.Objective)
	}

	// NaN spells "unset" explicitly.
	nan, err := Solve(build(), []int{0, 1}, Options{Incumbent: math.NaN()})
	if err != nil {
		t.Fatal(err)
	}
	if nan.Status != lp.Optimal || math.Abs(nan.Objective) > 1e-9 {
		t.Fatalf("NaN incumbent must behave as unset: status=%v obj=%g", nan.Status, nan.Objective)
	}

	// The zero value of Options still means "no incumbent": the solve must
	// find the optimum normally.
	unset, err := Solve(build(), []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if unset.Status != lp.Optimal || math.Abs(unset.Objective) > 1e-9 {
		t.Fatalf("unset incumbent: status=%v obj=%g want optimal 0", unset.Status, unset.Objective)
	}
}

func TestNodeLimitReturnsIncumbent(t *testing.T) {
	// A knapsack-ish problem with enough integer vars to need nodes; with
	// MaxNodes 1 the rounding heuristic should still deliver something.
	r := rand.New(rand.NewSource(7))
	const n = 12
	p := lp.NewProblem(n)
	var terms []lp.Term
	for i := 0; i < n; i++ {
		p.SetObjectiveCoeff(i, -(1 + r.Float64()*9))
		p.SetBounds(i, 0, 1)
		terms = append(terms, lp.Term{Var: i, Coeff: 1 + r.Float64()*9})
	}
	p.AddConstraint(terms, lp.LE, 20)
	ints := make([]int, n)
	for i := range ints {
		ints[i] = i
	}
	res, err := Solve(p, ints, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status == lp.Optimal && res.Proven {
		t.Log("solved at root; acceptable")
	}
	if res.Status != lp.Optimal {
		t.Fatalf("expected an incumbent from rounding, got %v", res.Status)
	}
}

// TestRandomMILPAgainstBruteForce cross-checks branch and bound against
// exhaustive enumeration on small random integer programs.
func TestRandomMILPAgainstBruteForce(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(3) // 2..4 integer vars in [0,3]
		ub := 3.0
		p := lp.NewProblem(n)
		costs := make([]float64, n)
		for i := range costs {
			costs[i] = math.Round((r.Float64()*4-2)*4) / 4
			p.SetObjectiveCoeff(i, costs[i])
			p.SetBounds(i, 0, ub)
		}
		// A couple of random LE constraints with non-negative coeffs keep
		// the problem bounded and feasible (x=0 always works).
		m := 1 + r.Intn(3)
		type row struct {
			coeff []float64
			rhs   float64
		}
		var rows []row
		for k := 0; k < m; k++ {
			var terms []lp.Term
			coeff := make([]float64, n)
			for i := 0; i < n; i++ {
				c := math.Round(r.Float64()*3*4) / 4
				coeff[i] = c
				if c != 0 {
					terms = append(terms, lp.Term{Var: i, Coeff: c})
				}
			}
			rhs := math.Round(r.Float64()*10*4) / 4
			rows = append(rows, row{coeff, rhs})
			if len(terms) > 0 {
				p.AddConstraint(terms, lp.LE, rhs)
			}
		}
		ints := make([]int, n)
		for i := range ints {
			ints[i] = i
		}
		res, err := Solve(p, ints, Options{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		if res.Status != lp.Optimal {
			t.Logf("seed %d: status %v (x=0 is feasible!)", seed, res.Status)
			return false
		}
		// Brute force.
		best := math.Inf(1)
		var rec func(i int, x []float64)
		rec = func(i int, x []float64) {
			if i == n {
				for _, rw := range rows {
					lhs := 0.0
					for j := range x {
						lhs += rw.coeff[j] * x[j]
					}
					if lhs > rw.rhs+1e-9 {
						return
					}
				}
				obj := 0.0
				for j := range x {
					obj += costs[j] * x[j]
				}
				if obj < best {
					best = obj
				}
				return
			}
			for v := 0.0; v <= ub; v++ {
				x[i] = v
				rec(i+1, x)
			}
		}
		rec(0, make([]float64, n))
		if math.Abs(res.Objective-best) > 1e-5 {
			t.Logf("seed %d: milp %g vs brute force %g (x=%v)", seed, res.Objective, best, res.X)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegerSolutionRespectsTolerance(t *testing.T) {
	p := lp.NewProblem(1)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}}, lp.GE, 2.3)
	res, err := Solve(p, []int{0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.X[0]-3) > 1e-6 {
		t.Fatalf("x=%v, want 3", res.X)
	}
}

func TestGapToleranceAcceptsNearOptimal(t *testing.T) {
	// With a generous gap, the solver may stop at the seeded incumbent.
	p := lp.NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.SetObjectiveCoeff(1, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coeff: 1}, {Var: 1, Coeff: 1}}, lp.GE, 10)
	res, err := Solve(p, []int{0, 1}, Options{Incumbent: 10.4, GapTol: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != lp.Optimal {
		t.Fatalf("status %v", res.Status)
	}
	if res.Objective > 10.4+1e-9 {
		t.Fatalf("objective %g above the seed", res.Objective)
	}
}

func TestTimeLimitHonored(t *testing.T) {
	// A hard knapsack with a 1ns budget must still return something
	// sensible (rounding incumbent or IterLimit) and quickly.
	r := rand.New(rand.NewSource(3))
	const n = 16
	p := lp.NewProblem(n)
	var terms []lp.Term
	for i := 0; i < n; i++ {
		p.SetObjectiveCoeff(i, -(1 + r.Float64()))
		p.SetBounds(i, 0, 1)
		terms = append(terms, lp.Term{Var: i, Coeff: 1 + r.Float64()})
	}
	p.AddConstraint(terms, lp.LE, 8)
	ints := make([]int, n)
	for i := range ints {
		ints[i] = i
	}
	start := time.Now()
	res, err := Solve(p, ints, Options{TimeLimit: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("time limit ignored")
	}
	if res.Status == lp.Optimal && res.Proven {
		t.Log("solved at root before the deadline check; acceptable")
	}
}
