// Package milp solves mixed-integer linear programs by best-first branch
// and bound over the internal/lp simplex solver. Together they stand in
// for the Gurobi Optimizer used by the paper to solve the MIP partition
// problem (§3.2): instances there are small after layer-similarity
// compression, so a straightforward exact search suffices.
package milp

import (
	"container/heap"
	"math"
	"time"

	"mobius/internal/lp"
)

// Options bound the search effort.
type Options struct {
	// MaxNodes caps the number of branch-and-bound nodes (default 5000).
	MaxNodes int
	// TimeLimit caps wall-clock solve time (default 10s).
	TimeLimit time.Duration
	// IntTol is the integrality tolerance (default 1e-6).
	IntTol float64
	// Incumbent seeds the upper bound with a known feasible objective so
	// the search can prune immediately. The zero value of Options means
	// "no incumbent"; to seed a legitimate zero-valued bound, set
	// IncumbentSet (an unset incumbent can also be spelled NaN).
	Incumbent float64
	// IncumbentSet marks Incumbent as meaningful even when it is zero.
	// Any nonzero finite Incumbent is treated as set for compatibility.
	IncumbentSet bool
	// GapTol is the relative optimality gap: nodes whose LP bound is
	// within GapTol of the incumbent are pruned. Zero means exact.
	GapTol float64
	// Cancel, when non-nil, is polled between branch-and-bound nodes;
	// returning true abandons the search early (the result is then
	// best-effort, as if a node or time limit had been hit). It lets a
	// caller running several solves concurrently stop work whose outcome
	// it already knows it will discard.
	Cancel func() bool
	// Scratch, when non-nil, supplies pooled working memory for the
	// per-node LP clone and simplex tableau. One scratch serves one
	// worker goroutine across any number of Solve calls; concurrent
	// sharing is not safe.
	Scratch *Scratch
}

// Scratch pools the branch-and-bound working memory: the LP problem
// clone mutated per node and the simplex solver's tableau. Reuse across
// sequential Solve calls is safe and removes the dominant allocations of
// the search; concurrent sharing is not safe.
type Scratch struct {
	lp   lp.Scratch
	prob lp.Problem
}

// NewScratch returns an empty scratch that grows to the largest problem
// it solves.
func NewScratch() *Scratch { return &Scratch{} }

func (o Options) withDefaults() Options {
	if o.MaxNodes <= 0 {
		o.MaxNodes = 5000
	}
	if o.TimeLimit <= 0 {
		o.TimeLimit = 10 * time.Second
	}
	if o.IntTol <= 0 {
		o.IntTol = 1e-6
	}
	if math.IsNaN(o.Incumbent) || (o.Incumbent == 0 && !o.IncumbentSet) {
		o.Incumbent = math.Inf(1)
	}
	return o
}

// Result is the outcome of a MILP solve.
type Result struct {
	// Status is Optimal when an integer solution was found (Proven tells
	// whether optimality was certified), Infeasible when no integer point
	// exists, IterLimit when limits were hit with no incumbent.
	Status    lp.Status
	X         []float64
	Objective float64
	// Nodes is the number of explored branch-and-bound nodes.
	Nodes int
	// Proven is true when the search space was exhausted, certifying
	// optimality of X.
	Proven bool
}

type node struct {
	bound  float64            // LP relaxation objective (lower bound)
	fixes  map[int][2]float64 // variable bound overrides
	branch int                // variable chosen for branching, -1 if none
	frac   float64            // fractional value of branch variable
}

type nodeHeap []*node

func (h nodeHeap) Len() int           { return len(h) }
func (h nodeHeap) Less(i, j int) bool { return h[i].bound < h[j].bound }
func (h nodeHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x any)        { *h = append(*h, x.(*node)) }
func (h *nodeHeap) Pop() any          { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// Solve minimizes p subject to the variables in intVars taking integer
// values.
func Solve(p *lp.Problem, intVars []int, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	deadline := time.Now().Add(opts.TimeLimit)

	res := &Result{Status: lp.IterLimit, Objective: opts.Incumbent}
	var bestX []float64

	sc := opts.Scratch
	if sc == nil {
		sc = NewScratch()
	}
	relax := func(fixes map[int][2]float64) (*lp.Solution, error) {
		q := p.CloneInto(&sc.prob)
		for v, b := range fixes {
			lo, hi := q.Bounds(v)
			if b[0] > lo {
				lo = b[0]
			}
			if b[1] < hi {
				hi = b[1]
			}
			q.SetBounds(v, lo, hi)
		}
		return q.SolveWith(&sc.lp)
	}

	// fractional returns the integer variable furthest from integrality.
	fractional := func(x []float64) (int, float64) {
		best, bestDist := -1, opts.IntTol
		var bestVal float64
		for _, v := range intVars {
			f := x[v] - math.Floor(x[v])
			dist := math.Min(f, 1-f)
			if dist > bestDist {
				best, bestDist, bestVal = v, dist, x[v]
			}
		}
		return best, bestVal
	}

	// tryRound fixes every integer variable at the rounding of x and
	// re-solves; a feasible result becomes an incumbent.
	tryRound := func(x []float64, fixes map[int][2]float64) {
		rf := map[int][2]float64{}
		for v, b := range fixes {
			rf[v] = b
		}
		feasibleRound := true
		for _, v := range intVars {
			r := math.Round(x[v])
			lo, hi := p.Bounds(v)
			if b, ok := rf[v]; ok {
				if b[0] > lo {
					lo = b[0]
				}
				if b[1] < hi {
					hi = b[1]
				}
			}
			if r < lo-opts.IntTol || r > hi+opts.IntTol {
				feasibleRound = false
				break
			}
			rf[v] = [2]float64{r, r}
		}
		if !feasibleRound {
			return
		}
		sol, err := relax(rf)
		if err != nil || sol.Status != lp.Optimal {
			return
		}
		if sol.Objective < res.Objective-1e-9 {
			res.Objective = sol.Objective
			bestX = sol.X
			res.Status = lp.Optimal
		}
	}

	root, err := relax(nil)
	if err != nil {
		return nil, err
	}
	switch root.Status {
	case lp.Infeasible:
		return &Result{Status: lp.Infeasible, Proven: true}, nil
	case lp.Unbounded:
		return &Result{Status: lp.Unbounded}, nil
	}

	open := &nodeHeap{}
	pushNode := func(bound float64, fixes map[int][2]float64, x []float64) {
		v, val := fractional(x)
		if v < 0 {
			// Integral LP solution: direct incumbent.
			if bound < res.Objective-1e-9 {
				res.Objective = bound
				bestX = x
				res.Status = lp.Optimal
			}
			return
		}
		heap.Push(open, &node{bound: bound, fixes: fixes, branch: v, frac: val})
	}

	tryRound(root.X, nil)
	pushNode(root.Objective, map[int][2]float64{}, root.X)

	exhausted := true
	for open.Len() > 0 {
		if res.Nodes >= opts.MaxNodes || time.Now().After(deadline) {
			exhausted = false
			break
		}
		if opts.Cancel != nil && opts.Cancel() {
			exhausted = false
			break
		}
		nd := heap.Pop(open).(*node)
		cutoff := res.Objective - 1e-9
		if opts.GapTol > 0 && !math.IsInf(res.Objective, 1) {
			cutoff = res.Objective - opts.GapTol*math.Abs(res.Objective)
		}
		if nd.bound >= cutoff {
			continue // pruned by incumbent (within gap tolerance)
		}
		res.Nodes++

		lo, hi := math.Inf(-1), math.Floor(nd.frac)
		for side := 0; side < 2; side++ {
			fixes := map[int][2]float64{}
			for k, v := range nd.fixes {
				fixes[k] = v
			}
			prev, ok := fixes[nd.branch]
			if !ok {
				prev = [2]float64{math.Inf(-1), math.Inf(1)}
			}
			nlo, nhi := prev[0], prev[1]
			if lo > nlo {
				nlo = lo
			}
			if hi < nhi {
				nhi = hi
			}
			fixes[nd.branch] = [2]float64{nlo, nhi}

			sol, err := relax(fixes)
			if err != nil {
				return nil, err
			}
			if sol.Status == lp.Optimal && sol.Objective < res.Objective-1e-9 {
				tryRound(sol.X, fixes)
				pushNode(sol.Objective, fixes, sol.X)
			}

			// Second side: x >= ceil(frac).
			lo, hi = math.Ceil(nd.frac), math.Inf(1)
		}
	}

	if res.Status == lp.Optimal {
		res.X = bestX
		res.Proven = exhausted
		return res, nil
	}
	if exhausted {
		return &Result{Status: lp.Infeasible, Nodes: res.Nodes, Proven: true}, nil
	}
	return res, nil
}
