package elastic

import (
	"fmt"
	"strings"

	"mobius/internal/fault"
	"mobius/internal/hw"
)

// SurvivingTopology derives the machine left after the spec's permanent
// failures: the dead GPUs (fault.Spec.DeadGPUs) are removed, root
// complexes left without GPUs disappear, and GPU ids and root-complex
// indices are renumbered densely so the planner sees an ordinary
// topology. The returned gpuMap translates old GPU ids to new ones (-1
// for a dead GPU). DRAM, NVLink, the SSD tier and the transfer latency
// carry over unchanged — the host side of the machine survives a device
// failure.
func SurvivingTopology(topo *hw.Topology, spec *fault.Spec) (*hw.Topology, []int, error) {
	surv, gpuMap, _, err := survive(topo, spec)
	return surv, gpuMap, err
}

func survive(topo *hw.Topology, spec *fault.Spec) (*hw.Topology, []int, []int, error) {
	if !spec.HasPermanent() {
		return nil, nil, nil, fmt.Errorf("elastic: spec declares no permanent failure to survive")
	}
	dead, err := spec.DeadGPUs(topo)
	if err != nil {
		return nil, nil, nil, err
	}
	deadSet := make(map[int]bool, len(dead))
	for _, id := range dead {
		deadSet[id] = true
	}

	gpuMap := make([]int, len(topo.GPUs))
	rcMap := make([]int, len(topo.RootComplexBW))
	for i := range gpuMap {
		gpuMap[i] = -1
	}
	for i := range rcMap {
		rcMap[i] = -1
	}

	surv := &hw.Topology{
		Name:            fmt.Sprintf("%s minus %d GPU(s)", topo.Name, len(dead)),
		DRAMBW:          topo.DRAMBW,
		DRAMBytes:       topo.DRAMBytes,
		NVLinkBW:        topo.NVLinkBW,
		TransferLatency: topo.TransferLatency,
		SSDBW:           topo.SSDBW,
		SSDBytes:        topo.SSDBytes,
	}
	for _, g := range topo.GPUs {
		if deadSet[g.ID] {
			continue
		}
		rc := g.RootComplex
		if rcMap[rc] < 0 {
			rcMap[rc] = len(surv.RootComplexBW)
			surv.RootComplexBW = append(surv.RootComplexBW, topo.RootComplexBW[rc])
		}
		gpuMap[g.ID] = len(surv.GPUs)
		surv.GPUs = append(surv.GPUs, hw.GPU{ID: gpuMap[g.ID], Spec: g.Spec, RootComplex: rcMap[rc]})
	}
	if len(surv.GPUs) == 0 {
		return nil, nil, nil, fmt.Errorf("elastic: permanent failures leave no surviving GPU on %q", topo.Name)
	}
	if err := surv.Validate(); err != nil {
		return nil, nil, nil, err
	}
	return surv, gpuMap, rcMap, nil
}

// remapSpec translates the transient clauses of a spec onto the renumbered
// surviving topology: straggler and per-GPU names follow gpuMap, root
// complexes follow rcMap, and clauses bound to dead hardware are dropped
// (the fault died with the device). Permanent clauses are removed — the
// failure already happened. Returns nil when nothing survives translation.
func remapSpec(spec *fault.Spec, gpuMap, rcMap []int) *fault.Spec {
	base := spec.WithoutPermanent()
	if base.Empty() {
		return nil
	}
	out := &fault.Spec{Seed: base.Seed}
	for _, l := range base.Links {
		if name, ok := remapName(l.Link, gpuMap, rcMap); ok {
			l.Link = name
			out.Links = append(out.Links, l)
		}
	}
	for _, g := range base.Stragglers {
		if g.GPU < len(gpuMap) && gpuMap[g.GPU] >= 0 {
			g.GPU = gpuMap[g.GPU]
			out.Stragglers = append(out.Stragglers, g)
		}
	}
	for _, tr := range base.Transient {
		if tr.Match == "*" {
			out.Transient = append(out.Transient, tr)
			continue
		}
		if name, ok := remapName(tr.Match, gpuMap, rcMap); ok {
			tr.Match = name
			out.Transient = append(out.Transient, tr)
		}
	}
	for _, m := range base.MemPressure {
		if m.Pool == "dram" {
			out.MemPressure = append(out.MemPressure, m)
			continue
		}
		var id int
		if _, err := fmt.Sscanf(m.Pool, "gpu%d.mem", &id); err == nil && strings.HasSuffix(m.Pool, ".mem") {
			if id < len(gpuMap) && gpuMap[id] >= 0 {
				m.Pool = fmt.Sprintf("gpu%d.mem", gpuMap[id])
				out.MemPressure = append(out.MemPressure, m)
			}
		}
	}
	if out.Empty() {
		return nil
	}
	return out
}

// remapName translates one resource name ("rc0", "gpu3.link",
// "gpu1.nvlink", "drambus", "ssd") onto the renumbered topology; ok is
// false when the resource died with the failure.
func remapName(name string, gpuMap, rcMap []int) (string, bool) {
	switch {
	case name == "drambus" || name == "ssd":
		return name, true
	case strings.HasPrefix(name, "rc"):
		var rc int
		if _, err := fmt.Sscanf(name, "rc%d", &rc); err != nil || rc >= len(rcMap) || rcMap[rc] < 0 {
			return "", false
		}
		return fmt.Sprintf("rc%d", rcMap[rc]), true
	case strings.HasPrefix(name, "gpu"):
		var id int
		var suffix string
		if _, err := fmt.Sscanf(name, "gpu%d.%s", &id, &suffix); err != nil || id >= len(gpuMap) || gpuMap[id] < 0 {
			return "", false
		}
		return fmt.Sprintf("gpu%d.%s", gpuMap[id], suffix), true
	}
	return "", false
}
