package elastic

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
)

// nominalStep plans and simulates one nominal Mobius step, so tests can
// place failure onsets relative to the real step time instead of
// hard-coding seconds.
func nominalStep(t *testing.T, topo *hw.Topology) float64 {
	t.Helper()
	r, err := core.Run(core.SystemMobius, core.Options{Model: model.GPT3B, Topology: topo})
	if err != nil || r.OOM {
		t.Fatalf("nominal run: err=%v oom=%v", err, r.OOM)
	}
	return r.StepTime
}

// TestRecoveryAccountingIdentity is the acceptance criterion of the
// elastic subsystem: a gpu_fail mid-run completes via re-plan + resume,
// and the total time exceeds the fault-free run by exactly (checkpoint
// overhead + lost work since the last checkpoint + migration + re-plan
// overhead + slower survivor steps).
func TestRecoveryAccountingIdentity(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	step := nominalStep(t, topo)
	rep, err := Run(Config{
		Model:           model.GPT3B,
		Topology:        topo,
		Steps:           8,
		CheckpointEvery: 2,
		Policy:          PolicyReplan,
		Faults: &fault.Spec{
			GPUFails: []fault.GPUFailFault{{GPU: 1, At: 4.6 * step}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost == nil || rep.FailedStep == 0 {
		t.Fatalf("failure did not fire: %+v", rep)
	}
	if rep.Lost.Resource != "gpu1" {
		t.Fatalf("lost resource: %q", rep.Lost.Resource)
	}
	if rep.FailedStep < 2 || rep.FailedStep > 6 {
		t.Fatalf("onset at 4.6 steps landed in step %d", rep.FailedStep)
	}
	if rep.ResumeStep <= 0 || rep.ResumeStep >= rep.FailedStep {
		t.Fatalf("resume step %d not inside (0, %d)", rep.ResumeStep, rep.FailedStep)
	}
	if rep.ResumeStep%rep.CheckpointEvery != 0 {
		t.Fatalf("resume step %d not a checkpoint boundary", rep.ResumeStep)
	}
	if !reflect.DeepEqual(rep.SurvivorGPUs, []int{0, 2, 3}) {
		t.Fatalf("survivors: %v", rep.SurvivorGPUs)
	}

	// The accounting identity, both sides assembled from independent
	// simulations: TotalTime = DetectedAt + replan + migration + the
	// survivor tail, and it must decompose exactly into fault-free +
	// the five overhead terms.
	if diff := math.Abs(rep.TotalTime - rep.AccountedTotal()); diff > 1e-9*rep.TotalTime {
		t.Fatalf("accounting identity broken: total %.12f vs accounted %.12f (diff %g)",
			rep.TotalTime, rep.AccountedTotal(), diff)
	}
	if rep.TotalTime <= rep.FaultFreeTime {
		t.Fatalf("recovered run (%.3fs) not slower than fault-free (%.3fs)", rep.TotalTime, rep.FaultFreeTime)
	}
	for name, v := range map[string]float64{
		"lost work":     rep.LostWork,
		"migration":     rep.MigrationSeconds,
		"ckpt overhead": rep.CheckpointOverheadPre,
		"survivor step": rep.SurvivorStep,
		"detected at":   rep.DetectedAt,
	} {
		if v <= 0 {
			t.Errorf("%s should be positive, got %g", name, v)
		}
	}
	// Losing a GPU must not make steps faster.
	if rep.SurvivorStep < rep.PlainStep {
		t.Errorf("survivor step %.4fs faster than full-topology step %.4fs", rep.SurvivorStep, rep.PlainStep)
	}
	// The checkpoint write costs time, never saves it.
	if rep.CkptStep < rep.PlainStep {
		t.Errorf("checkpointed step %.4fs faster than plain step %.4fs", rep.CkptStep, rep.PlainStep)
	}
	if !strings.Contains(rep.String(), "policy=replan") {
		t.Errorf("report summary: %s", rep)
	}
}

// TestRecoveryMatrix exercises every policy against both permanent
// failure classes end-to-end (the check-recovery CI target runs this
// under -race): the run must complete, the accounting identity must hold,
// and recovery is never free.
func TestRecoveryMatrix(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	step := nominalStep(t, topo)
	fails := map[string]*fault.Spec{
		"gpu-fail":  {GPUFails: []fault.GPUFailFault{{GPU: 1, At: 2.5 * step}}},
		"link-fail": {LinkFails: []fault.LinkFailFault{{Link: "gpu2.link", At: 2.5 * step}}},
	}
	for _, policy := range Policies() {
		for name, spec := range fails {
			t.Run(string(policy)+"/"+name, func(t *testing.T) {
				rep, err := Run(Config{
					Model:           model.GPT3B,
					Topology:        topo,
					Steps:           6,
					CheckpointEvery: 2,
					Policy:          policy,
					Faults:          spec,
				})
				if err != nil {
					t.Fatal(err)
				}
				if rep.Lost == nil {
					t.Fatal("failure did not fire")
				}
				if diff := math.Abs(rep.TotalTime - rep.AccountedTotal()); diff > 1e-9*rep.TotalTime {
					t.Fatalf("accounting identity broken: %.12f vs %.12f", rep.TotalTime, rep.AccountedTotal())
				}
				if rep.TotalTime <= rep.FaultFreeTime {
					t.Fatalf("recovery was free: total %.3fs <= fault-free %.3fs", rep.TotalTime, rep.FaultFreeTime)
				}
				if policy == PolicyRestart {
					if rep.ResumeStep != 0 || rep.MigrationSeconds != 0 {
						t.Fatalf("restart must not resume or migrate: %+v", rep)
					}
				} else {
					if rep.ResumeStep == 0 {
						t.Fatalf("%s should resume from a checkpoint", policy)
					}
					if rep.MigrationSeconds <= 0 {
						t.Fatalf("%s should pay migration", policy)
					}
				}
			})
		}
	}
}

// TestRecoveryDeterministic replays the same recovery twice: everything
// except the wall-clock re-plan time must be bit-identical.
func TestRecoveryDeterministic(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	step := nominalStep(t, topo)
	cfg := Config{
		Model:           model.GPT3B,
		Topology:        topo,
		Steps:           6,
		CheckpointEvery: 2,
		Policy:          PolicyReplan,
		Faults: &fault.Spec{
			Seed:     7,
			GPUFails: []fault.GPUFailFault{{GPU: 1, At: 3.4 * step}},
			Transient: []fault.TransientFault{
				{Match: "*", Probability: 0.05, BackoffMS: 1},
			},
		},
	}
	// Everything simulated must be bit-identical; only ReplanSeconds is
	// wall-clock, so it (and the totals that embed it) is excluded.
	deterministic := func(r *RecoveryReport) []float64 {
		return []float64{
			r.PlainStep, r.CkptStep, r.FaultFreeTime, r.DetectedAt,
			r.MigrationSeconds, r.SurvivorStep, r.SurvivorCkptStep,
			r.LostWork, r.CheckpointOverheadPre, r.CheckpointOverheadPost,
			r.ResumePenalty, float64(r.FailedStep), float64(r.ResumeStep),
		}
	}
	var prev []float64
	for i := 0; i < 2; i++ {
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		got := deterministic(rep)
		if i > 0 && !reflect.DeepEqual(got, prev) {
			t.Fatalf("recovery diverged across replays:\n%v\n%v", got, prev)
		}
		prev = got
	}
}

// TestRecoveryNoFailureWithinRun places the onset beyond the horizon of
// the run: the report is the fault-free timeline plus checkpoint
// insurance.
func TestRecoveryNoFailureWithinRun(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	rep, err := Run(Config{
		Model:           model.GPT3B,
		Topology:        topo,
		Steps:           2,
		CheckpointEvery: 1,
		Faults:          &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: 0, At: 1e9}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != nil || rep.FailedStep != 0 {
		t.Fatalf("failure beyond the run fired: %+v", rep)
	}
	if rep.TotalTime != 2*rep.CkptStep {
		t.Fatalf("fault-free timeline: total %.6f, want 2 x %.6f", rep.TotalTime, rep.CkptStep)
	}
	if math.Abs(rep.Overhead()-rep.CheckpointOverheadPre) > 1e-12*rep.TotalTime {
		t.Fatalf("overhead %.9f should be pure checkpoint insurance %.9f", rep.Overhead(), rep.CheckpointOverheadPre)
	}
}

// TestRecoveryNilFaults: no fault spec at all is a plain checkpointed
// run, not a panic.
func TestRecoveryNilFaults(t *testing.T) {
	rep, err := Run(Config{
		Model:           model.GPT3B,
		Topology:        hw.Commodity(hw.RTX3090Ti, 2, 2),
		Steps:           2,
		CheckpointEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Lost != nil || rep.TotalTime <= 0 {
		t.Fatalf("fault-free run: %+v", rep)
	}
}

// TestRecoveryRejects pins the config validation errors.
func TestRecoveryRejects(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	base := Config{Model: model.GPT3B, Topology: topo, Steps: 4}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"no-steps", func(c *Config) { c.Steps = 0 }, "steps must be positive"},
		{"bad-policy", func(c *Config) { c.Policy = "reboot" }, "unknown policy"},
		{"bad-dest", func(c *Config) { c.CheckpointDest = "tape" }, "unknown checkpoint destination"},
		{"two-permanents", func(c *Config) {
			c.Faults = &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: 0, At: 1}, {GPU: 1, At: 2}}}
		}, "permanent failures declared"},
		{"windowed-links", func(c *Config) {
			c.Faults = &fault.Spec{
				GPUFails: []fault.GPUFailFault{{GPU: 0, At: 1}},
				Links:    []fault.LinkFault{{Link: "rc1", Multiplier: 0.5, Start: 1, End: 2}},
			}
		}, "windowed link faults"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			c.mut(&cfg)
			if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}

// TestRecoverySSDCheckpointCostsMore routes the snapshot to the NVMe tier:
// the checkpointed step and the migration must both be at least as
// expensive as over DRAM — SSD bandwidth is the narrowest link in the
// machine.
func TestRecoverySSDCheckpointCostsMore(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	step := nominalStep(t, topo)
	run := func(dest Dest) *RecoveryReport {
		rep, err := Run(Config{
			Model:           model.GPT3B,
			Topology:        topo,
			Steps:           4,
			CheckpointEvery: 1,
			CheckpointDest:  dest,
			Policy:          PolicyReplan,
			Faults:          &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: 3, At: 2.5 * step}}},
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	dram, ssd := run(DestDRAM), run(DestSSD)
	if ssd.CkptStep < dram.CkptStep {
		t.Fatalf("SSD checkpoint step %.4fs cheaper than DRAM %.4fs", ssd.CkptStep, dram.CkptStep)
	}
	if ssd.MigrationSeconds < dram.MigrationSeconds {
		t.Fatalf("SSD migration %.4fs cheaper than DRAM %.4fs", ssd.MigrationSeconds, dram.MigrationSeconds)
	}
}
