package elastic

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
)

// survivorShape canonicalizes a topology for deduplication: losing gpu0
// or gpu1 of Topo 2+2 yields the same machine, so the property only
// needs to plan each distinct survivor once per model.
func survivorShape(topo *hw.Topology) string {
	sizes := make([]int, len(topo.RootComplexBW))
	for _, g := range topo.GPUs {
		sizes[g.RootComplex]++
	}
	sort.Ints(sizes)
	return fmt.Sprint(sizes)
}

// TestReplanEveryModelEverySingleLoss is the re-planning property: for
// every Table 3 model and every way to lose a single GPU from the
// commodity topologies, the surviving topology is valid and the elastic
// planner (MIP under a deadline, greedy fallback past it) produces a
// plan that passes Plan.Validate — in particular, every stage fits the
// survivors' usable memory.
func TestReplanEveryModelEverySingleLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("plans every model x survivor shape")
	}
	topos := []*hw.Topology{
		hw.Commodity(hw.RTX3090Ti, 4),
		hw.Commodity(hw.RTX3090Ti, 2, 2),
		hw.Commodity(hw.RTX3090Ti, 1, 3),
		hw.Commodity(hw.RTX3090Ti, 4, 4),
	}
	planned := make(map[string]bool)
	for _, m := range model.Table3() {
		for _, topo := range topos {
			for g := 0; g < topo.NumGPUs(); g++ {
				spec := &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: g, At: 1}}}
				surv, gpuMap, err := SurvivingTopology(topo, spec)
				if err != nil {
					t.Fatalf("%s/%s lose gpu%d: %v", m.Name, topo.Name, g, err)
				}
				if gpuMap[g] != -1 || surv.NumGPUs() != topo.NumGPUs()-1 {
					t.Fatalf("%s lose gpu%d: survivor has %d GPUs, map %v", topo.Name, g, surv.NumGPUs(), gpuMap)
				}
				key := m.Name + "/" + survivorShape(surv)
				if planned[key] {
					continue
				}
				planned[key] = true
				t.Run(fmt.Sprintf("%s/%s/lose-gpu%d", m.Name, topo.Name, g), func(t *testing.T) {
					ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
					defer cancel()
					plan, err := core.PlanMobiusCtx(ctx, core.Options{Model: m, Topology: surv})
					if err != nil {
						t.Fatalf("re-plan on %s: %v", surv.Name, err)
					}
					if err := plan.Validate(surv); err != nil {
						t.Fatalf("re-planned plan invalid on %s (fallback=%v): %v", surv.Name, plan.Fallback, err)
					}
				})
			}
		}
	}
	// Exactly three distinct survivor shapes exist across the four
	// topologies: [3] (Topo 4, and 1+3 losing its lone GPU), [1 2]
	// (2+2, and 1+3 losing a tripled GPU) and [3 4] (4+4).
	if want := 3 * len(model.Table3()); len(planned) != want {
		t.Fatalf("planned %d unique shapes, want %d", len(planned), want)
	}
}
