// Package elastic closes the fault → detect → checkpoint → re-plan →
// migrate → resume loop on the simulated hardware. A multi-step training
// run is priced step by step; when a permanent failure (fault.Spec's
// gpu_fail/link_fail) halts a step with a sim.ResourceLostError, the run
// recovers onto the surviving topology under one of three policies and the
// RecoveryReport decomposes the total overhead into checkpoint writes,
// lost work, re-planning, state migration, and slower survivor steps —
// the checkpoint-interval vs. recovery-cost trade-off the experiment
// sweeps.
package elastic

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/pipeline"
	"mobius/internal/sim"
)

// Policy selects how the run recovers after a permanent failure.
type Policy string

// Recovery policies of the experiment: restart-from-scratch,
// resume-same-plan (keep the partition, remap stages sequentially onto the
// survivors), and elastic re-plan (full MIP + cross mapping on the
// surviving topology).
const (
	PolicyRestart Policy = "restart"
	PolicyResume  Policy = "resume"
	PolicyReplan  Policy = "replan"
)

// PolicyRollback prices recovery from a *numeric* failure rather than a
// lost resource: the training guard (train.Guard) rejects the step named
// by Config.AnomalyStep, the run restores the last good checkpoint on
// the same, fully intact machine, and re-executes from there. The
// restore cost is the report's RollbackRestoreSeconds term (see
// rollback.go); no re-plan or migration-to-survivors is involved.
const PolicyRollback Policy = "rollback"

// Policies lists the permanent-failure recovery policies in presentation
// order (PolicyRollback is separate: it recovers from anomalies, not
// lost resources, and is selected together with Config.AnomalyStep).
func Policies() []Policy { return []Policy{PolicyRestart, PolicyResume, PolicyReplan} }

// Dest selects where periodic checkpoints are written.
type Dest string

// Checkpoint destinations: a second DRAM region (over the DRAM bus) or
// the NVMe tier.
const (
	DestDRAM Dest = "dram"
	DestSSD  Dest = "ssd"
)

// Config describes one elastic training run.
type Config struct {
	Model    model.Config
	Topology *hw.Topology
	// Steps is the number of training steps, numbered 1..Steps.
	Steps int
	// CheckpointEvery writes a consistent state snapshot after every
	// k-th step (0 disables checkpointing). PolicyRestart ignores it —
	// restart-from-scratch is the no-checkpoint baseline.
	CheckpointEvery int
	// CheckpointDest routes snapshot writes (default DestDRAM). DestSSD
	// attaches the default commodity NVMe tier when the topology lacks
	// one.
	CheckpointDest Dest
	// Faults is the fault scenario. At most one permanent failure is
	// supported; its onset is in global run time. The transient clauses
	// hold for every step (windowed link faults are rejected for
	// multi-step runs — their windows are in single-step time).
	Faults *fault.Spec
	// Policy selects the recovery strategy (default PolicyReplan).
	Policy Policy
	// AnomalyStep, with PolicyRollback, is the 1-based step whose result
	// the numeric guard rejects; the run rolls back to the last
	// checkpoint before it. Mutually exclusive with permanent failures.
	AnomalyStep int
	// PlanDeadline bounds each planning call; past it the plan degrades
	// to the deterministic greedy fallback (core.PlanMobiusCtx).
	PlanDeadline time.Duration
	// Microbatches is M per step (default: the GPU count of the full
	// topology); it stays constant after recovery so the global batch
	// size — and hence training semantics — is preserved.
	Microbatches int
	// Parallelism bounds planner worker goroutines.
	Parallelism int
	// Planner, when non-nil, computes every plan of the run — the full
	// machine's and the recovery's — in place of direct PlanMobiusCtx
	// calls. With a prewarmed plansvc.Service here, the recovery re-plan
	// is a cache lookup and ReplanSeconds collapses to microseconds;
	// plans are pure functions of their inputs, so a correct Planner
	// never changes what is planned, only what it costs.
	Planner core.Planner
}

// RecoveryReport prices one elastic run. All durations are simulated
// seconds except ReplanSeconds, which is measured planner wall-clock time
// (the one nondeterministic field).
type RecoveryReport struct {
	Policy          Policy
	Steps           int
	CheckpointEvery int
	// CheckpointBytes is the snapshot size (fp32 masters + optimizer
	// state).
	CheckpointBytes float64
	CheckpointDest  Dest

	// PlainStep and CkptStep are the step times on the full topology
	// without and with the checkpoint write appended.
	PlainStep float64
	CkptStep  float64
	// FaultFreeTime is Steps * PlainStep — the no-fault, no-checkpoint
	// baseline every overhead below is charged against.
	FaultFreeTime float64

	// Failure describes the permanent failure; empty when none fired
	// within the run (the report is then the fault-free timeline).
	Failure string
	// FailedStep is the 1-based step the onset landed in (0 when none).
	FailedStep int
	// Lost is the structured detection event from the simulator.
	Lost *sim.ResourceLostError
	// DetectedAt is the global run time of detection.
	DetectedAt float64
	// StepsCompleted counts fully completed steps before the failure.
	StepsCompleted int
	// ResumeStep is the last checkpointed step (0 = initial state); the
	// run re-executes steps ResumeStep+1..Steps on the survivors.
	ResumeStep int

	// SurvivorGPUs maps old GPU ids of the survivors (ascending).
	SurvivorGPUs []int
	// SurvivorStep and SurvivorCkptStep are the re-planned step times on
	// the surviving topology.
	SurvivorStep     float64
	SurvivorCkptStep float64
	// ReplanSeconds is the wall-clock planning time of the recovery
	// plan; ReplanFallback reports the deadline-degraded greedy plan.
	ReplanSeconds  float64
	ReplanFallback bool
	// MigrationBytes/MigrationSeconds price restoring the last snapshot
	// into a consistent DRAM image for the new stage layout.
	MigrationBytes   float64
	MigrationSeconds float64

	// AnomalyStep is the guard-rejected step of a rollback run (0
	// otherwise); RollbackRestoreSeconds prices re-loading the last good
	// checkpoint on the intact machine (see rollback.go).
	AnomalyStep            int
	RollbackRestoreSeconds float64

	// Overhead decomposition against FaultFreeTime; see AccountedTotal.
	CheckpointOverheadPre  float64
	LostWork               float64
	ResumePenalty          float64
	CheckpointOverheadPost float64

	// TotalTime is the end-to-end run time including recovery.
	TotalTime float64
}

// Overhead is the total cost of the failure plus the checkpoint insurance,
// relative to the fault-free uncheckpointed run.
func (r *RecoveryReport) Overhead() float64 { return r.TotalTime - r.FaultFreeTime }

// AccountedTotal recomposes TotalTime from the report's overhead terms:
//
//	FaultFreeTime + CheckpointOverheadPre + LostWork + ReplanSeconds +
//	MigrationSeconds + ResumePenalty + CheckpointOverheadPost +
//	RollbackRestoreSeconds
//
// It must equal TotalTime to floating-point accuracy — the accounting
// identity the recovery tests assert. The rollback term is zero except
// under PolicyRollback, where replan/migration/resume terms are zero in
// turn (the machine is intact).
func (r *RecoveryReport) AccountedTotal() float64 {
	return r.FaultFreeTime + r.CheckpointOverheadPre + r.LostWork +
		r.ReplanSeconds + r.MigrationSeconds + r.ResumePenalty + r.CheckpointOverheadPost +
		r.RollbackRestoreSeconds
}

func (r *RecoveryReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "elastic recovery (policy=%s):\n", r.Policy)
	fmt.Fprintf(&b, "  %d steps, checkpoint every %s to %s (%.1f GB)\n",
		r.Steps, everyLabel(r.CheckpointEvery), r.CheckpointDest, r.CheckpointBytes/1e9)
	fmt.Fprintf(&b, "  fault-free: %d x %.3fs = %.3fs", r.Steps, r.PlainStep, r.FaultFreeTime)
	if r.CkptStep > r.PlainStep {
		fmt.Fprintf(&b, " (checkpointed step %.3fs)", r.CkptStep)
	}
	b.WriteByte('\n')
	if r.Policy == PolicyRollback && r.AnomalyStep > 0 {
		fmt.Fprintf(&b, "  anomaly: guard rejects step %d; detected at %.3fs, roll back to step %d (restore %.3fs)\n",
			r.AnomalyStep, r.DetectedAt, r.ResumeStep, r.RollbackRestoreSeconds)
		fmt.Fprintf(&b, "  total: %.3fs = fault-free %.3fs + ckpt %.3fs + lost work %.3fs + restore %.3fs + ckpt(re-exec) %.3fs\n",
			r.TotalTime, r.FaultFreeTime, r.CheckpointOverheadPre, r.LostWork,
			r.RollbackRestoreSeconds, r.CheckpointOverheadPost)
		return b.String()
	}
	if r.Failure == "" {
		fmt.Fprintf(&b, "  no permanent failure within the run; total %.3fs (+%.3fs checkpoint overhead)\n",
			r.TotalTime, r.Overhead())
		return b.String()
	}
	fmt.Fprintf(&b, "  failure: %s (lands in step %d); detected at %.3fs, %d steps done, resume from step %d\n",
		r.Failure, r.FailedStep, r.DetectedAt, r.StepsCompleted, r.ResumeStep)
	fmt.Fprintf(&b, "  survivors: %d GPU(s) %v, step %.3fs; re-plan %.3fs (fallback=%v); migrate %.1f GB in %.3fs\n",
		len(r.SurvivorGPUs), r.SurvivorGPUs, r.SurvivorStep, r.ReplanSeconds, r.ReplanFallback,
		r.MigrationBytes/1e9, r.MigrationSeconds)
	fmt.Fprintf(&b, "  total: %.3fs = fault-free %.3fs + ckpt %.3fs + lost work %.3fs + re-plan %.3fs + migrate %.3fs + slower steps %.3fs + ckpt(surv) %.3fs\n",
		r.TotalTime, r.FaultFreeTime, r.CheckpointOverheadPre, r.LostWork,
		r.ReplanSeconds, r.MigrationSeconds, r.ResumePenalty, r.CheckpointOverheadPost)
	return b.String()
}

func everyLabel(every int) string {
	if every <= 0 {
		return "never"
	}
	return fmt.Sprintf("%d step(s)", every)
}

// Run executes the elastic run described by cfg and prices it.
func Run(cfg Config) (*RecoveryReport, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("elastic: topology is required")
	}
	if cfg.Steps <= 0 {
		return nil, fmt.Errorf("elastic: steps must be positive (got %d)", cfg.Steps)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("elastic: negative checkpoint interval %d", cfg.CheckpointEvery)
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyReplan
	}
	switch cfg.Policy {
	case PolicyRestart, PolicyResume, PolicyReplan, PolicyRollback:
	default:
		return nil, fmt.Errorf("elastic: unknown policy %q (want %v or %s)", cfg.Policy, Policies(), PolicyRollback)
	}
	if cfg.AnomalyStep != 0 && cfg.Policy != PolicyRollback {
		return nil, fmt.Errorf("elastic: anomaly step %d requires policy %s (got %s)", cfg.AnomalyStep, PolicyRollback, cfg.Policy)
	}
	if cfg.Policy == PolicyRollback && (cfg.AnomalyStep < 1 || cfg.AnomalyStep > cfg.Steps) {
		return nil, fmt.Errorf("elastic: policy %s needs an anomaly step in [1, %d] (got %d)", PolicyRollback, cfg.Steps, cfg.AnomalyStep)
	}
	if cfg.CheckpointDest == "" {
		cfg.CheckpointDest = DestDRAM
	}
	if cfg.CheckpointDest != DestDRAM && cfg.CheckpointDest != DestSSD {
		return nil, fmt.Errorf("elastic: unknown checkpoint destination %q (want %s or %s)", cfg.CheckpointDest, DestDRAM, DestSSD)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
	}
	perms := cfg.Faults.Permanents()
	if len(perms) > 1 {
		return nil, fmt.Errorf("elastic: %d permanent failures declared; recovering from more than one is not supported", len(perms))
	}
	if cfg.Policy == PolicyRollback && len(perms) > 0 {
		return nil, fmt.Errorf("elastic: policy %s recovers from a numeric anomaly on an intact machine and cannot be combined with permanent failures", PolicyRollback)
	}
	if cfg.Steps > 1 && cfg.Faults != nil {
		for i, l := range cfg.Faults.Links {
			if l.Start > 0 || l.End > 0 {
				return nil, fmt.Errorf("elastic: links[%d] (%s): windowed link faults use single-step time and cannot span a %d-step run; use an unbounded window (start 0, end 0)",
					i, l.Link, cfg.Steps)
			}
		}
	}

	topo := cfg.Topology
	if cfg.CheckpointDest == DestSSD && !topo.HasSSD() {
		clone := *topo
		topo = (&clone).WithSSD(hw.CommoditySSDBW, hw.CommoditySSDBytes)
	}
	M := cfg.Microbatches
	if M <= 0 {
		M = topo.NumGPUs()
	}
	every := cfg.CheckpointEvery
	if cfg.Policy == PolicyRestart {
		// Restart-from-scratch is the no-checkpoint baseline.
		every = 0
	}
	ckBytes := cfg.Model.ModelStatesBytes()
	base := cfg.Faults.WithoutPermanent()

	rep := &RecoveryReport{
		Policy:          cfg.Policy,
		Steps:           cfg.Steps,
		CheckpointEvery: every,
		CheckpointBytes: ckBytes,
		CheckpointDest:  cfg.CheckpointDest,
	}

	// Plan and price a step on the full machine.
	plan, err := planOn(cfg, topo, M)
	if err != nil {
		return nil, err
	}
	ck := &pipeline.CheckpointWrite{Bytes: ckBytes, ToSSD: cfg.CheckpointDest == DestSSD}
	plain, err := runStep(cfg, topo, plan, M, base, nil)
	if err != nil {
		return nil, err
	}
	rep.PlainStep = plain
	rep.CkptStep = plain
	if every > 0 {
		if rep.CkptStep, err = runStep(cfg, topo, plan, M, base, ck); err != nil {
			return nil, err
		}
	}
	rep.FaultFreeTime = float64(cfg.Steps) * rep.PlainStep

	if cfg.Policy == PolicyRollback {
		if err := finishRollback(cfg, rep, topo, base, every); err != nil {
			return nil, err
		}
		return rep, nil
	}

	// duration of step i (1-based) on the full machine.
	dur := func(i int) float64 {
		if every > 0 && i%every == 0 {
			return rep.CkptStep
		}
		return rep.PlainStep
	}

	// Locate the failing step: the permanent onset is in global run time.
	failStep, elapsed := 0, 0.0
	if len(perms) == 1 {
		for i := 1; i <= cfg.Steps; i++ {
			if perms[0].At < elapsed+dur(i) {
				failStep = i
				break
			}
			elapsed += dur(i)
		}
	}
	if failStep == 0 {
		// No failure fires within the run: the fault-free timeline, plus
		// whatever checkpoint insurance was configured.
		total := 0.0
		for i := 1; i <= cfg.Steps; i++ {
			total += dur(i)
		}
		rep.TotalTime = total
		rep.CheckpointOverheadPre = total - rep.FaultFreeTime
		return rep, nil
	}

	// Replay the failing step with the onset shifted into step-local time;
	// the simulator halts it with a structured loss.
	failSpec := shiftPermanent(base, perms[0], perms[0].At-elapsed)
	lost, halted, err := runFailingStep(cfg, topo, plan, M, failSpec, ckWhen(every, failStep, ck))
	if err != nil {
		return nil, err
	}
	rep.Failure = perms[0].String()
	rep.FailedStep = failStep
	rep.Lost = lost
	rep.DetectedAt = elapsed + halted
	rep.StepsCompleted = failStep - 1
	if every > 0 {
		rep.ResumeStep = ((failStep - 1) / every) * every
	}

	// The surviving machine and the conditions that still hold on it.
	surv, gpuMap, rcMap, err := survive(topo, cfg.Faults)
	if err != nil {
		return nil, err
	}
	for old, idx := range gpuMap {
		if idx >= 0 {
			rep.SurvivorGPUs = append(rep.SurvivorGPUs, old)
		}
	}
	survSpec := remapSpec(cfg.Faults, gpuMap, rcMap)

	// Recovery plan (wall-clock timed: this is real planner work a live
	// system would spend while the cluster idles).
	replanStart := time.Now()
	survPlan, err := recoveryPlan(cfg, plan, surv, M)
	if err != nil {
		return nil, err
	}
	rep.ReplanSeconds = time.Since(replanStart).Seconds()
	rep.ReplanFallback = survPlan.Fallback

	// Migrate the last consistent snapshot into place (resume/replan).
	// Restart re-initializes instead, which the fault-free baseline also
	// excludes.
	if cfg.Policy != PolicyRestart {
		rep.MigrationBytes = ckBytes
		rep.MigrationSeconds, err = MigrationSeconds(surv, survSpec, ckBytes, cfg.CheckpointDest)
		if err != nil {
			return nil, err
		}
	}

	// Price a survivor step and finish the timeline.
	rep.SurvivorStep, err = runStep(cfg, surv, survPlan, M, survSpec, nil)
	if err != nil {
		return nil, err
	}
	rep.SurvivorCkptStep = rep.SurvivorStep
	if every > 0 {
		if rep.SurvivorCkptStep, err = runStep(cfg, surv, survPlan, M, survSpec, ck); err != nil {
			return nil, err
		}
	}

	resume := rep.ResumeStep
	endOfResume := float64(resume)*rep.PlainStep + float64(ckptsUpTo(resume, every))*(rep.CkptStep-rep.PlainStep)
	rep.CheckpointOverheadPre = float64(ckptsUpTo(resume, every)) * (rep.CkptStep - rep.PlainStep)
	rep.LostWork = rep.DetectedAt - endOfResume
	postCkpts := ckptsUpTo(cfg.Steps, every) - ckptsUpTo(resume, every)
	remaining := float64(cfg.Steps-resume)*rep.SurvivorStep + float64(postCkpts)*(rep.SurvivorCkptStep-rep.SurvivorStep)
	rep.ResumePenalty = float64(cfg.Steps-resume) * (rep.SurvivorStep - rep.PlainStep)
	rep.CheckpointOverheadPost = float64(postCkpts) * (rep.SurvivorCkptStep - rep.SurvivorStep)
	rep.TotalTime = rep.DetectedAt + rep.ReplanSeconds + rep.MigrationSeconds + remaining
	return rep, nil
}

// ckptsUpTo counts checkpointed steps among 1..i.
func ckptsUpTo(i, every int) int {
	if every <= 0 {
		return 0
	}
	return i / every
}

// ckWhen returns ck when step i is a checkpointed step, else nil.
func ckWhen(every, i int, ck *pipeline.CheckpointWrite) *pipeline.CheckpointWrite {
	if every > 0 && i%every == 0 {
		return ck
	}
	return nil
}

// shiftPermanent rebuilds a single-step spec: the base transient clauses
// plus the permanent failure at its step-local onset.
func shiftPermanent(base *fault.Spec, p fault.Permanent, at float64) *fault.Spec {
	var out fault.Spec
	if base != nil {
		out = *base
	}
	if p.Kind == "gpu_fail" {
		out.GPUFails = []fault.GPUFailFault{{GPU: p.GPU, At: at}}
	} else {
		out.LinkFails = []fault.LinkFailFault{{Link: p.Link, At: at}}
	}
	return &out
}

// planOn plans Mobius on a topology under the configured deadline.
func planOn(cfg Config, topo *hw.Topology, mb int) (*core.Plan, error) {
	ctx := context.Background()
	if cfg.PlanDeadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.PlanDeadline)
		defer cancel()
	}
	opts := core.Options{
		Model:        cfg.Model,
		Topology:     topo,
		Microbatches: mb,
		Parallelism:  cfg.Parallelism,
	}
	if cfg.Planner != nil {
		return cfg.Planner.PlanMobius(ctx, opts)
	}
	return core.PlanMobiusCtx(ctx, opts)
}

// recoveryPlan derives the plan the run resumes with, per policy:
// restart/replan plan from scratch on the survivors; resume keeps the
// original partition and lays its stages sequentially onto the surviving
// GPUs, failing when that plan no longer fits their memory.
func recoveryPlan(cfg Config, full *core.Plan, surv *hw.Topology, mb int) (*core.Plan, error) {
	if cfg.Policy != PolicyResume {
		return planOn(cfg, surv, mb)
	}
	mp, err := mapping.Sequential(surv, full.Partition.NumStages())
	if err != nil {
		return nil, fmt.Errorf("elastic: resume-same-plan: %w", err)
	}
	p := &core.Plan{Profile: full.Profile, Partition: full.Partition, Mapping: mp}
	if err := p.Validate(surv); err != nil {
		return nil, fmt.Errorf("elastic: resume-same-plan infeasible on surviving topology: %w", err)
	}
	return p, nil
}

// runStep simulates one Mobius step and returns its duration.
func runStep(cfg Config, topo *hw.Topology, plan *core.Plan, mb int, spec *fault.Spec, ck *pipeline.CheckpointWrite) (float64, error) {
	res, err := pipeline.RunMobius(topo, pipeline.MobiusConfig{
		Partition:    plan.Partition,
		Mapping:      plan.Mapping,
		Microbatches: mb,
		Faults:       spec,
		Checkpoint:   ck,
	})
	if err != nil {
		return 0, err
	}
	if res.OOM {
		return 0, fmt.Errorf("elastic: step OOMs on %q: %s", topo.Name, res.OOMCause)
	}
	if res.Lost != nil {
		return 0, fmt.Errorf("elastic: unexpected resource loss in a fault-free step: %v", res.Lost)
	}
	return res.StepTime, nil
}

// runFailingStep replays the step the permanent onset lands in and
// returns the structured loss plus the elapsed step-local time up to
// detection.
func runFailingStep(cfg Config, topo *hw.Topology, plan *core.Plan, mb int, spec *fault.Spec, ck *pipeline.CheckpointWrite) (*sim.ResourceLostError, float64, error) {
	res, err := pipeline.RunMobius(topo, pipeline.MobiusConfig{
		Partition:    plan.Partition,
		Mapping:      plan.Mapping,
		Microbatches: mb,
		Faults:       spec,
		Checkpoint:   ck,
	})
	if err != nil {
		return nil, 0, err
	}
	if res.OOM {
		return nil, 0, fmt.Errorf("elastic: failing step OOMs on %q: %s", topo.Name, res.OOMCause)
	}
	if res.Lost == nil {
		return nil, 0, fmt.Errorf("elastic: permanent failure did not halt the step it lands in (onset inside a %gs step)", res.StepTime)
	}
	return res.Lost, res.StepTime, nil
}

// MigrationSeconds prices restoring a checkpoint snapshot over the real
// topology: one bulk transfer from the checkpoint tier into DRAM on the
// machine the work lands on, under the fault conditions that hold there
// (nil spec means nominal hardware). Elastic recovery uses it for the
// surviving topology after a GPU or link loss; the cluster layer
// (internal/cluster) uses it to price re-landing a drained job's state
// on another server of the fleet.
func MigrationSeconds(surv *hw.Topology, spec *fault.Spec, bytes float64, dest Dest) (float64, error) {
	srv, err := hw.Build(surv)
	if err != nil {
		return 0, err
	}
	if !spec.Empty() {
		if _, err := fault.Apply(srv, spec); err != nil {
			return 0, err
		}
	}
	src := hw.DRAMEnd
	if dest == DestSSD {
		src = hw.SSDEnd
	}
	srv.Sim.Transfer("migrate", nil, srv.Route(src, hw.DRAMEnd), bytes, 0)
	if err := srv.RouteErr(); err != nil {
		return 0, err
	}
	end, err := srv.Sim.Run()
	if err != nil {
		return 0, err
	}
	return end, nil
}
