package elastic

import (
	"math"
	"strings"
	"testing"

	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
)

// TestRecoveryRollbackIdentity is the rollback acceptance criterion: a
// numeric anomaly at step A rolls back to the last checkpoint before A,
// pays the snapshot restore on the intact machine, re-executes — and the
// extended accounting identity (with the RollbackRestoreSeconds term)
// holds exactly.
func TestRecoveryRollbackIdentity(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	rep, err := Run(Config{
		Model:           model.GPT3B,
		Topology:        topo,
		Steps:           8,
		CheckpointEvery: 2,
		Policy:          PolicyRollback,
		AnomalyStep:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AnomalyStep != 5 || rep.FailedStep != 5 || rep.StepsCompleted != 4 {
		t.Fatalf("anomaly bookkeeping wrong: %+v", rep)
	}
	if rep.ResumeStep != 4 {
		t.Fatalf("resume step %d, want 4 (last checkpoint before step 5)", rep.ResumeStep)
	}
	if rep.RollbackRestoreSeconds <= 0 {
		t.Fatalf("rollback restore should cost time, got %g", rep.RollbackRestoreSeconds)
	}
	// Nothing died: no re-plan, no migration-to-survivors, no slower steps.
	if rep.ReplanSeconds != 0 || rep.MigrationSeconds != 0 || rep.ResumePenalty != 0 {
		t.Fatalf("rollback must not pay permanent-failure terms: %+v", rep)
	}
	if rep.Lost != nil || len(rep.SurvivorGPUs) != 0 {
		t.Fatalf("rollback invented a resource loss: %+v", rep)
	}
	if diff := math.Abs(rep.TotalTime - rep.AccountedTotal()); diff > 1e-9*rep.TotalTime {
		t.Fatalf("extended accounting identity broken: total %.12f vs accounted %.12f (diff %g)",
			rep.TotalTime, rep.AccountedTotal(), diff)
	}
	if rep.TotalTime <= rep.FaultFreeTime {
		t.Fatalf("rollback was free: total %.3fs <= fault-free %.3fs", rep.TotalTime, rep.FaultFreeTime)
	}
	// Lost work is exactly the rolled-back step span (steps 5 back to 4).
	if want := 1 * rep.PlainStep; math.Abs(rep.LostWork-want) > 1e-9*want {
		t.Fatalf("lost work %.6f, want %.6f (one plain step)", rep.LostWork, want)
	}
	if s := rep.String(); !strings.Contains(s, "policy=rollback") || !strings.Contains(s, "roll back to step 4") {
		t.Errorf("report summary: %s", s)
	}
}

// TestRecoveryRollbackUncheckpointed prices the insurance-free case: with
// no checkpoints the rollback restarts from initial state — the restore
// is free but every completed step is lost work re-executed.
func TestRecoveryRollbackUncheckpointed(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	rep, err := Run(Config{
		Model:       model.GPT3B,
		Topology:    topo,
		Steps:       5,
		Policy:      PolicyRollback,
		AnomalyStep: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ResumeStep != 0 || rep.RollbackRestoreSeconds != 0 {
		t.Fatalf("uncheckpointed rollback should restart from scratch for free: %+v", rep)
	}
	// Timeline: 3 steps to the anomaly + all 5 re-executed.
	if want := 8 * rep.PlainStep; math.Abs(rep.TotalTime-want) > 1e-9*want {
		t.Fatalf("total %.6f, want %.6f (3 lost + 5 re-executed steps)", rep.TotalTime, want)
	}
	if diff := math.Abs(rep.TotalTime - rep.AccountedTotal()); diff > 1e-9*rep.TotalTime {
		t.Fatalf("identity broken: %.12f vs %.12f", rep.TotalTime, rep.AccountedTotal())
	}
}

// TestRecoveryRollbackRejects pins the rollback-specific validation.
func TestRecoveryRollbackRejects(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	base := Config{Model: model.GPT3B, Topology: topo, Steps: 4}
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"anomaly-without-policy", func(c *Config) { c.AnomalyStep = 2; c.Policy = PolicyReplan }, "requires policy rollback"},
		{"rollback-without-anomaly", func(c *Config) { c.Policy = PolicyRollback }, "needs an anomaly step"},
		{"anomaly-out-of-range", func(c *Config) { c.Policy = PolicyRollback; c.AnomalyStep = 9 }, "needs an anomaly step"},
		{"rollback-with-permanent", func(c *Config) {
			c.Policy = PolicyRollback
			c.AnomalyStep = 2
			c.Faults = &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: 0, At: 1}}}
		}, "cannot be combined with permanent failures"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := base
			c.mut(&cfg)
			if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("want error containing %q, got %v", c.want, err)
			}
		})
	}
}
