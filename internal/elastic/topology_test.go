package elastic

import (
	"reflect"
	"testing"

	"mobius/internal/fault"
	"mobius/internal/hw"
)

// TestSurvivingTopologyRenumbers checks the survivor derivation on the
// asymmetric Topo 1+3: losing the lone GPU of rc0 drops the whole root
// complex and renumbers both GPUs and complexes densely.
func TestSurvivingTopologyRenumbers(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 1, 3)
	spec := &fault.Spec{GPUFails: []fault.GPUFailFault{{GPU: 0, At: 1}}}
	surv, gpuMap, err := SurvivingTopology(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	if surv.NumGPUs() != 3 || len(surv.RootComplexBW) != 1 {
		t.Fatalf("survivor: %d GPUs, %d RCs", surv.NumGPUs(), len(surv.RootComplexBW))
	}
	if !reflect.DeepEqual(gpuMap, []int{-1, 0, 1, 2}) {
		t.Fatalf("gpuMap: %v", gpuMap)
	}
	for i, g := range surv.GPUs {
		if g.ID != i || g.RootComplex != 0 {
			t.Fatalf("gpu %d not renumbered: %+v", i, g)
		}
	}
	if err := surv.Validate(); err != nil {
		t.Fatalf("survivor invalid: %v", err)
	}
}

// TestSurvivingTopologyLinkFailTakesWholeComplex kills rc0 on Topo 2+2:
// both GPUs under it die.
func TestSurvivingTopologyLinkFailTakesWholeComplex(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	spec := &fault.Spec{LinkFails: []fault.LinkFailFault{{Link: "rc0", At: 1}}}
	surv, gpuMap, err := SurvivingTopology(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	if surv.NumGPUs() != 2 || !reflect.DeepEqual(gpuMap, []int{-1, -1, 0, 1}) {
		t.Fatalf("survivor: %d GPUs, map %v", surv.NumGPUs(), gpuMap)
	}
}

// TestSurvivingTopologyDRAMBusNotSurvivable: losing host memory is fatal.
func TestSurvivingTopologyDRAMBusNotSurvivable(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	spec := &fault.Spec{LinkFails: []fault.LinkFailFault{{Link: "drambus", At: 1}}}
	if _, _, err := SurvivingTopology(topo, spec); err == nil {
		t.Fatal("drambus failure should not be survivable")
	}
}

// TestRemapSpec checks the transient clauses follow the renumbering and
// clauses bound to dead hardware are dropped.
func TestRemapSpec(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 1, 3)
	spec := &fault.Spec{
		Seed:     7,
		GPUFails: []fault.GPUFailFault{{GPU: 0, At: 1}},
		Links: []fault.LinkFault{
			{Link: "gpu2.link", Multiplier: 0.5, Start: 0},
			{Link: "rc1", Multiplier: 0.8, Start: 0},
		},
		Stragglers: []fault.StragglerFault{
			{GPU: 3, Throughput: 0.5},
			{GPU: 0, Throughput: 0.9}, // dies with gpu0
		},
		Transient:   []fault.TransientFault{{Match: "*", Probability: 0.1, BackoffMS: 1}},
		MemPressure: []fault.MemPressureFault{{Pool: "gpu1.mem", ReserveBytes: 1e9}, {Pool: "dram", ReserveBytes: 1e9}},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	_, gpuMap, rcMap, err := survive(topo, spec)
	if err != nil {
		t.Fatal(err)
	}
	out := remapSpec(spec, gpuMap, rcMap)
	if out.HasPermanent() {
		t.Fatal("permanent clauses must not survive remapping")
	}
	if len(out.Links) != 2 || out.Links[0].Link != "gpu1.link" || out.Links[1].Link != "rc0" {
		t.Fatalf("links: %+v", out.Links)
	}
	if len(out.Stragglers) != 1 || out.Stragglers[0].GPU != 2 {
		t.Fatalf("stragglers: %+v", out.Stragglers)
	}
	if len(out.Transient) != 1 || out.Transient[0].Match != "*" {
		t.Fatalf("transient: %+v", out.Transient)
	}
	if len(out.MemPressure) != 2 || out.MemPressure[0].Pool != "gpu0.mem" || out.MemPressure[1].Pool != "dram" {
		t.Fatalf("mem pressure: %+v", out.MemPressure)
	}
	if out.Seed != 7 {
		t.Fatalf("seed not carried: %d", out.Seed)
	}
}
