package elastic

import (
	"fmt"

	"mobius/internal/fault"
	"mobius/internal/hw"
)

// finishRollback completes a PolicyRollback report. The timeline it
// prices: steps 1..A-1 run normally (paying checkpoint writes on
// schedule), step A completes but its result is rejected by the numeric
// guard (train.Guard), the run restores the last checkpoint written
// strictly before A, and re-executes steps R+1..Steps on the same,
// fully intact machine. Step A's own checkpoint — if it was due — is
// never written: the guard scans the step's result first, and a
// detected anomaly must not overwrite good state.
//
// Terms (Δ = CkptStep - PlainStep, ck(i) = ckptsUpTo(i, every)):
//
//	DetectedAt  = A·PlainStep + ck(R)·Δ
//	LostWork    = (A-R)·PlainStep
//	Restore     = one bulk snapshot read on the intact machine (R > 0)
//	TotalTime   = DetectedAt + Restore + (Steps-R)·PlainStep + (ck(Steps)-ck(R))·Δ
//
// which extends the accounting identity with exactly the
// RollbackRestoreSeconds term; replan, migration and resume-penalty
// terms are zero — nothing died and no plan changes.
func finishRollback(cfg Config, rep *RecoveryReport, topo *hw.Topology, base *fault.Spec, every int) error {
	A := cfg.AnomalyStep
	R := 0
	if every > 0 {
		R = ((A - 1) / every) * every
	}
	rep.AnomalyStep = A
	rep.FailedStep = A
	rep.StepsCompleted = A - 1
	rep.ResumeStep = R
	rep.Failure = fmt.Sprintf("numeric anomaly rejected by the guard at step %d", A)

	delta := rep.CkptStep - rep.PlainStep
	rep.CheckpointOverheadPre = float64(ckptsUpTo(R, every)) * delta
	rep.DetectedAt = float64(A)*rep.PlainStep + rep.CheckpointOverheadPre
	rep.LostWork = float64(A-R) * rep.PlainStep

	if R > 0 {
		// Re-load the snapshot from its tier into DRAM; with R == 0 the
		// run re-initializes from scratch instead, which is free (the
		// restart policy prices the same way).
		rep.MigrationBytes = rep.CheckpointBytes
		var err error
		rep.RollbackRestoreSeconds, err = MigrationSeconds(topo, base, rep.CheckpointBytes, cfg.CheckpointDest)
		if err != nil {
			return err
		}
	}

	postCkpts := ckptsUpTo(cfg.Steps, every) - ckptsUpTo(R, every)
	rep.CheckpointOverheadPost = float64(postCkpts) * delta
	reexec := float64(cfg.Steps-R)*rep.PlainStep + float64(postCkpts)*delta
	rep.TotalTime = rep.DetectedAt + rep.RollbackRestoreSeconds + reexec
	return nil
}
