// Package textgen generates a deterministic synthetic corpus standing in
// for WikiText-2 in the convergence experiment (Figure 13). The paper
// fine-tunes GPT-2 on WikiText-2; that dataset is not available offline,
// so this package produces a token stream with Zipf-distributed unigrams
// and Markov bigram structure — enough learnable signal for a small GPT's
// loss to fall well below the uniform baseline, which is all the
// experiment needs (it compares two execution orders on the same data).
package textgen

import (
	"fmt"
	"math"
	"math/rand"

	"mobius/internal/nn"
)

// Corpus is a generated token stream.
type Corpus struct {
	Vocab  int
	Tokens []int
}

// Generate builds a corpus of the given vocabulary size and length.
// Generation is fully determined by seed.
func Generate(vocab, length int, seed int64) (*Corpus, error) {
	if vocab < 4 || length < 2 {
		return nil, fmt.Errorf("textgen: need vocab >= 4 and length >= 2, got %d/%d", vocab, length)
	}
	rng := rand.New(rand.NewSource(seed))

	// Zipf-ish unigram weights.
	weights := make([]float64, vocab)
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), 1.1)
	}

	// Markov structure: each token prefers a small set of successors,
	// derived deterministically, mixed with the unigram distribution.
	succ := make([][3]int, vocab)
	for i := range succ {
		succ[i] = [3]int{(i*7 + 3) % vocab, (i*13 + 5) % vocab, (i*29 + 11) % vocab}
	}

	sampleUnigram := func() int {
		var total float64
		for _, w := range weights {
			total += w
		}
		x := rng.Float64() * total
		for i, w := range weights {
			x -= w
			if x <= 0 {
				return i
			}
		}
		return vocab - 1
	}

	c := &Corpus{Vocab: vocab, Tokens: make([]int, length)}
	cur := sampleUnigram()
	for i := range c.Tokens {
		c.Tokens[i] = cur
		r := rng.Float64()
		switch {
		case r < 0.45:
			cur = succ[cur][0]
		case r < 0.65:
			cur = succ[cur][1]
		case r < 0.8:
			cur = succ[cur][2]
		default:
			cur = sampleUnigram()
		}
	}
	return c, nil
}

// Batch cuts deterministic training microbatches from the corpus: batch
// b of step s reads consecutive windows at stride-derived offsets, with
// next-token targets.
func (c *Corpus) Batch(seqLen, batchSize int, step, microbatch int) nn.Batch {
	if seqLen+1 >= len(c.Tokens) {
		panic("textgen: corpus shorter than sequence length")
	}
	out := nn.Batch{}
	span := len(c.Tokens) - seqLen - 1
	for s := 0; s < batchSize; s++ {
		// A fixed mixing function spreads windows across the corpus.
		off := (step*batchSize*7919 + microbatch*104729 + s*31337) % span
		toks := make([]int, seqLen)
		tgts := make([]int, seqLen)
		copy(toks, c.Tokens[off:off+seqLen])
		copy(tgts, c.Tokens[off+1:off+seqLen+1])
		out.Tokens = append(out.Tokens, toks)
		out.Targets = append(out.Targets, tgts)
	}
	return out
}

// Bigrams returns how often each observed bigram repeats, a quick
// learnability diagnostic used by tests.
func (c *Corpus) Bigrams() map[[2]int]int {
	out := map[[2]int]int{}
	for i := 0; i+1 < len(c.Tokens); i++ {
		out[[2]int{c.Tokens[i], c.Tokens[i+1]}]++
	}
	return out
}
