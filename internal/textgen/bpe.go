package textgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Tokenizer is a byte-pair-encoding tokenizer trained on a corpus: the
// standard GPT-2 preprocessing, implemented from scratch so the
// fine-tuning substrate has a complete text pipeline (text -> ids ->
// model -> ids -> text).
type Tokenizer struct {
	merges [][2]string
	vocab  map[string]int
	inv    []string
}

// TrainBPE learns a BPE vocabulary of at most vocabSize symbols from the
// text. The initial alphabet is the set of bytes present in the text;
// each round merges the most frequent adjacent pair (ties broken
// lexicographically for determinism).
func TrainBPE(text string, vocabSize int) (*Tokenizer, error) {
	if len(text) == 0 {
		return nil, fmt.Errorf("textgen: empty training text")
	}
	if vocabSize < 2 {
		return nil, fmt.Errorf("textgen: vocabSize %d too small", vocabSize)
	}

	// Working sequence of symbols, starting at bytes.
	seq := make([]string, len(text))
	alphabet := map[string]bool{}
	for i := 0; i < len(text); i++ {
		s := string(text[i])
		seq[i] = s
		alphabet[s] = true
	}

	tk := &Tokenizer{vocab: map[string]int{}}
	for s := range alphabet {
		tk.vocab[s] = 0 // assign below, deterministically
	}
	// Deterministic id assignment for the alphabet.
	var alpha []string
	for s := range alphabet {
		alpha = append(alpha, s)
	}
	sortStrings(alpha)
	tk.inv = tk.inv[:0]
	for i, s := range alpha {
		tk.vocab[s] = i
		tk.inv = append(tk.inv, s)
	}

	for len(tk.inv) < vocabSize {
		// Count adjacent pairs.
		counts := map[[2]string]int{}
		for i := 0; i+1 < len(seq); i++ {
			counts[[2]string{seq[i], seq[i+1]}]++
		}
		var best [2]string
		bestN := 0
		for p, n := range counts {
			if n > bestN || (n == bestN && lessPair(p, best)) {
				best, bestN = p, n
			}
		}
		if bestN < 2 {
			break // nothing repeats: no useful merges left
		}
		merged := best[0] + best[1]
		tk.merges = append(tk.merges, best)
		tk.vocab[merged] = len(tk.inv)
		tk.inv = append(tk.inv, merged)

		// Apply the merge to the working sequence.
		out := seq[:0]
		for i := 0; i < len(seq); i++ {
			if i+1 < len(seq) && seq[i] == best[0] && seq[i+1] == best[1] {
				out = append(out, merged)
				i++
				continue
			}
			out = append(out, seq[i])
		}
		seq = out
	}
	return tk, nil
}

// VocabSize returns the number of learned symbols.
func (t *Tokenizer) VocabSize() int { return len(t.inv) }

// Encode tokenizes text by replaying the learned merges. Bytes outside
// the training alphabet are skipped.
func (t *Tokenizer) Encode(text string) []int {
	seq := make([]string, 0, len(text))
	for i := 0; i < len(text); i++ {
		s := string(text[i])
		if _, ok := t.vocab[s]; ok {
			seq = append(seq, s)
		}
	}
	for _, m := range t.merges {
		merged := m[0] + m[1]
		out := seq[:0]
		for i := 0; i < len(seq); i++ {
			if i+1 < len(seq) && seq[i] == m[0] && seq[i+1] == m[1] {
				out = append(out, merged)
				i++
				continue
			}
			out = append(out, seq[i])
		}
		seq = out
	}
	ids := make([]int, len(seq))
	for i, s := range seq {
		ids[i] = t.vocab[s]
	}
	return ids
}

// Decode reconstructs text from token ids.
func (t *Tokenizer) Decode(ids []int) string {
	var b strings.Builder
	for _, id := range ids {
		if id >= 0 && id < len(t.inv) {
			b.WriteString(t.inv[id])
		}
	}
	return b.String()
}

// GenerateText produces a deterministic synthetic English-like text: a
// Markov chain over a small syllable-built word list, for training the
// BPE tokenizer and the convergence substrate end to end.
func GenerateText(words int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	syll := []string{"mo", "bi", "us", "pipe", "line", "par", "ti", "tion", "gpu", "ser", "ver", "com", "mod", "ity", "train"}
	vocab := make([]string, 40)
	for i := range vocab {
		n := 1 + rng.Intn(3)
		var w strings.Builder
		for k := 0; k < n; k++ {
			w.WriteString(syll[rng.Intn(len(syll))])
		}
		vocab[i] = w.String()
	}
	var b strings.Builder
	cur := 0
	for i := 0; i < words; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(vocab[cur])
		// Markov-ish transition with limited fan-out.
		switch rng.Intn(4) {
		case 0:
			cur = (cur*7 + 3) % len(vocab)
		case 1:
			cur = (cur + 1) % len(vocab)
		default:
			cur = rng.Intn(len(vocab))
		}
	}
	return b.String()
}

// TokenCorpus wraps an encoded text as a Corpus for the trainer.
func (t *Tokenizer) TokenCorpus(text string) *Corpus {
	return &Corpus{Vocab: t.VocabSize(), Tokens: t.Encode(text)}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func lessPair(a, b [2]string) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	return a[1] < b[1]
}
