package textgen

import (
	"strings"
	"testing"
)

func TestBPERoundTrip(t *testing.T) {
	text := GenerateText(2000, 1)
	tk, err := TrainBPE(text, 200)
	if err != nil {
		t.Fatal(err)
	}
	ids := tk.Encode(text)
	if got := tk.Decode(ids); got != text {
		t.Fatalf("round trip broke: %d vs %d bytes", len(got), len(text))
	}
}

func TestBPECompresses(t *testing.T) {
	text := GenerateText(2000, 2)
	tk, err := TrainBPE(text, 300)
	if err != nil {
		t.Fatal(err)
	}
	ids := tk.Encode(text)
	if len(ids) >= len(text) {
		t.Fatalf("BPE must shorten the sequence: %d tokens for %d bytes", len(ids), len(text))
	}
	ratio := float64(len(text)) / float64(len(ids))
	if ratio < 1.5 {
		t.Fatalf("compression ratio %.2f too low for repetitive text", ratio)
	}
	t.Logf("compression: %d bytes -> %d tokens (%.2fx)", len(text), len(ids), ratio)
}

func TestBPEDeterministic(t *testing.T) {
	text := GenerateText(500, 3)
	a, _ := TrainBPE(text, 100)
	b, _ := TrainBPE(text, 100)
	if a.VocabSize() != b.VocabSize() {
		t.Fatal("vocab size differs")
	}
	ia, ib := a.Encode(text), b.Encode(text)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("non-deterministic encoding")
		}
	}
}

func TestBPEHandlesUnknownBytes(t *testing.T) {
	tk, err := TrainBPE("aaabbbab", 10)
	if err != nil {
		t.Fatal(err)
	}
	ids := tk.Encode("aaZZbb") // Z not in the alphabet: skipped
	if tk.Decode(ids) != "aabb" {
		t.Fatalf("decoded %q", tk.Decode(ids))
	}
}

func TestBPEErrors(t *testing.T) {
	if _, err := TrainBPE("", 10); err == nil {
		t.Fatal("empty text must fail")
	}
	if _, err := TrainBPE("abc", 1); err == nil {
		t.Fatal("tiny vocab must fail")
	}
}

func TestTokenCorpusFeedsTrainer(t *testing.T) {
	text := GenerateText(3000, 4)
	tk, err := TrainBPE(text, 64)
	if err != nil {
		t.Fatal(err)
	}
	c := tk.TokenCorpus(text)
	if c.Vocab != tk.VocabSize() {
		t.Fatalf("vocab mismatch: %d vs %d", c.Vocab, tk.VocabSize())
	}
	if len(c.Tokens) < 100 {
		t.Fatalf("corpus too short: %d", len(c.Tokens))
	}
	b := c.Batch(8, 2, 0, 0)
	for _, seq := range b.Tokens {
		for _, tok := range seq {
			if tok < 0 || tok >= c.Vocab {
				t.Fatalf("token %d out of range", tok)
			}
		}
	}
}

func TestGenerateTextShape(t *testing.T) {
	text := GenerateText(100, 5)
	if n := len(strings.Fields(text)); n != 100 {
		t.Fatalf("words: %d", n)
	}
	if GenerateText(100, 5) != text {
		t.Fatal("non-deterministic text")
	}
}
