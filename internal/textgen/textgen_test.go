package textgen

import (
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(64, 10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Generate(64, 10000, 1)
	for i := range a.Tokens {
		if a.Tokens[i] != b.Tokens[i] {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
	c, _ := Generate(64, 10000, 2)
	same := 0
	for i := range a.Tokens {
		if a.Tokens[i] == c.Tokens[i] {
			same++
		}
	}
	if same == len(a.Tokens) {
		t.Fatal("different seeds produced identical corpora")
	}
}

func TestTokensInRange(t *testing.T) {
	c, _ := Generate(32, 5000, 7)
	for i, tok := range c.Tokens {
		if tok < 0 || tok >= 32 {
			t.Fatalf("token %d out of range at %d", tok, i)
		}
	}
}

func TestCorpusHasStructure(t *testing.T) {
	// The Markov chain must concentrate bigram mass: the top bigrams
	// should cover far more than a uniform corpus would.
	c, _ := Generate(64, 50000, 3)
	bi := c.Bigrams()
	max := 0
	for _, n := range bi {
		if n > max {
			max = n
		}
	}
	uniformExpect := 50000.0 / float64(64*64)
	if float64(max) < 5*uniformExpect {
		t.Fatalf("most frequent bigram %d barely above uniform %g: corpus unlearnable", max, uniformExpect)
	}
}

func TestBatchShapesAndTargets(t *testing.T) {
	c, _ := Generate(64, 5000, 5)
	b := c.Batch(16, 4, 0, 0)
	if b.Size() != 4 {
		t.Fatalf("batch size %d", b.Size())
	}
	for s := range b.Tokens {
		if len(b.Tokens[s]) != 16 || len(b.Targets[s]) != 16 {
			t.Fatal("sequence lengths")
		}
		// Targets must be the next-token shift of some corpus window.
		for i := 0; i+1 < 16; i++ {
			if b.Targets[s][i] != b.Tokens[s][i+1] {
				t.Fatalf("target %d is not the next token", i)
			}
		}
	}
}

func TestBatchVariesWithStep(t *testing.T) {
	c, _ := Generate(64, 5000, 5)
	a := c.Batch(16, 2, 0, 0)
	b := c.Batch(16, 2, 1, 0)
	differs := false
	for s := range a.Tokens {
		for i := range a.Tokens[s] {
			if a.Tokens[s][i] != b.Tokens[s][i] {
				differs = true
			}
		}
	}
	if !differs {
		t.Fatal("steps must sample different windows")
	}
}

func TestGenerateRejectsBadArgs(t *testing.T) {
	if _, err := Generate(2, 100, 1); err == nil {
		t.Fatal("tiny vocab must fail")
	}
	if _, err := Generate(16, 1, 1); err == nil {
		t.Fatal("tiny corpus must fail")
	}
}
