package fault

import (
	"fmt"
	"sort"
	"strings"

	"mobius/internal/hw"
	"mobius/internal/sim"
)

// This file declares permanent failures — a GPU dropping off the bus, a
// PCIe link dying — and binds them to the simulator's failure events
// (sim.ScheduleFailure). Unlike the transient clauses in fault.go, a
// permanent failure halts the run with a structured sim.ResourceLostError;
// the elastic package consumes the error to re-plan on the surviving
// topology.

// GPUFailFault removes one GPU permanently at time At: its compute and DMA
// engines stop and every flow crossing its PCIe (or NVLink) port is halted.
type GPUFailFault struct {
	GPU int `json:"gpu"`
	// At is the onset time in simulated seconds.
	At float64 `json:"at_s"`
}

// LinkFailFault kills one bandwidth resource permanently at time At. The
// link name follows the simulator resource naming: "rc0", "gpu3.link",
// "gpu1.nvlink". Failing "drambus" or "ssd" is accepted by the parser but
// is not survivable — no elastic recovery is possible without host memory.
type LinkFailFault struct {
	Link string `json:"link"`
	// At is the onset time in simulated seconds.
	At float64 `json:"at_s"`
}

// validatePermanent checks the permanent-failure clauses and their
// interaction with the transient ones: a degradation window or transient
// retry rule that targets a resource after its permanent death would be
// undefined interleaving, so the spec is rejected outright.
func (s *Spec) validatePermanent() error {
	if s.HorizonS < 0 {
		return fmt.Errorf("fault: negative horizon_s %g", s.HorizonS)
	}
	seenGPU := map[int]bool{}
	for i, g := range s.GPUFails {
		if g.GPU < 0 {
			return fmt.Errorf("fault: gpu_fails[%d]: negative gpu %d", i, g.GPU)
		}
		if g.At < 0 {
			return fmt.Errorf("fault: gpu_fails[%d] (gpu %d): negative onset %g", i, g.GPU, g.At)
		}
		if s.HorizonS > 0 && g.At >= s.HorizonS {
			return fmt.Errorf("fault: gpu_fails[%d] (gpu %d): onset %g outside horizon [0, %g)", i, g.GPU, g.At, s.HorizonS)
		}
		if seenGPU[g.GPU] {
			return fmt.Errorf("fault: gpu_fails[%d]: gpu %d fails twice", i, g.GPU)
		}
		seenGPU[g.GPU] = true
	}
	seenLink := map[string]bool{}
	for i, l := range s.LinkFails {
		if l.Link == "" {
			return fmt.Errorf("fault: link_fails[%d]: missing link name", i)
		}
		if l.At < 0 {
			return fmt.Errorf("fault: link_fails[%d] (%s): negative onset %g", i, l.Link, l.At)
		}
		if s.HorizonS > 0 && l.At >= s.HorizonS {
			return fmt.Errorf("fault: link_fails[%d] (%s): onset %g outside horizon [0, %g)", i, l.Link, l.At, s.HorizonS)
		}
		if seenLink[l.Link] {
			return fmt.Errorf("fault: link_fails[%d]: link %q fails twice", i, l.Link)
		}
		seenLink[l.Link] = true
	}

	// Resources dead from some onset onward, for overlap checks below.
	deadAt := map[string]float64{}
	for _, l := range s.LinkFails {
		deadAt[l.Link] = l.At
	}
	for _, g := range s.GPUFails {
		for _, name := range gpuResourceNames(g.GPU) {
			deadAt[name] = g.At
		}
	}
	for i, l := range s.Links {
		at, dead := deadAt[l.Link]
		if dead && (l.End == 0 || l.End > at) {
			return fmt.Errorf("fault: links[%d] (%s): degradation window [%g, %s) overlaps permanent failure of %q at t=%g",
				i, l.Link, l.Start, endLabel(l.End), l.Link, at)
		}
	}
	for i, tr := range s.Transient {
		if at, dead := deadAt[tr.Match]; dead {
			return fmt.Errorf("fault: transient[%d] (%s): retry rule matches resource %q permanently failed at t=%g; "+
				"remove the rule or scope it to a surviving resource", i, tr.Match, tr.Match, at)
		}
	}
	for i, c := range s.Corruptions {
		if at, dead := deadAt[c.Match]; dead {
			return fmt.Errorf("fault: corruptions[%d] (%s): corruption rule matches resource %q permanently failed at t=%g; "+
				"remove the rule or scope it to a surviving resource", i, c.Match, c.Match, at)
		}
	}
	return nil
}

// gpuResourceNames lists the bandwidth resources a GPU failure takes down.
func gpuResourceNames(gpu int) []string {
	return []string{fmt.Sprintf("gpu%d.link", gpu), fmt.Sprintf("gpu%d.nvlink", gpu)}
}

// HasPermanent reports whether the spec declares any permanent failure.
func (s *Spec) HasPermanent() bool {
	return s != nil && (len(s.GPUFails) > 0 || len(s.LinkFails) > 0)
}

// Permanent is one permanent failure in onset order, unified across the
// gpu_fail and link_fail clauses.
type Permanent struct {
	// Kind is "gpu_fail" or "link_fail".
	Kind string
	// GPU is the failed device (gpu_fail only).
	GPU int
	// Link is the failed resource name (link_fail only).
	Link string
	// At is the onset time in simulated seconds.
	At float64
}

func (p Permanent) String() string {
	if p.Kind == "gpu_fail" {
		return fmt.Sprintf("gpu%d fails at t=%.4g", p.GPU, p.At)
	}
	return fmt.Sprintf("link %s fails at t=%.4g", p.Link, p.At)
}

// Permanents returns the spec's permanent failures sorted by onset (ties:
// gpu_fail before link_fail, then spec order).
func (s *Spec) Permanents() []Permanent {
	if s == nil {
		return nil
	}
	var ps []Permanent
	for _, g := range s.GPUFails {
		ps = append(ps, Permanent{Kind: "gpu_fail", GPU: g.GPU, Link: "", At: g.At})
	}
	for _, l := range s.LinkFails {
		ps = append(ps, Permanent{Kind: "link_fail", GPU: -1, Link: l.Link, At: l.At})
	}
	sort.SliceStable(ps, func(i, j int) bool { return ps[i].At < ps[j].At })
	return ps
}

// WithoutPermanent returns a copy of the spec with the permanent-failure
// clauses (and the horizon that scopes them) removed — the transient
// conditions that keep holding on the surviving machine. Nil in, nil out.
func (s *Spec) WithoutPermanent() *Spec {
	if s == nil {
		return nil
	}
	c := *s
	c.GPUFails = nil
	c.LinkFails = nil
	c.HorizonS = 0
	return &c
}

// DeadGPUs maps the spec's permanent failures to the set of GPUs they
// remove from topo, sorted ascending. A gpu_fail removes its GPU; a
// link_fail removes the GPUs whose traffic cannot avoid the dead resource
// ("gpuN.link"/"gpuN.nvlink" → GPU N, "rcK" → every GPU under root complex
// K). Failing "drambus" or "ssd" returns an error: all checkpoint and
// staging traffic crosses host memory, so the loss is not survivable.
func (s *Spec) DeadGPUs(topo *hw.Topology) ([]int, error) {
	dead := map[int]bool{}
	for _, g := range s.GPUFails {
		dead[g.GPU] = true
	}
	for i, l := range s.LinkFails {
		switch {
		case l.Link == "drambus" || l.Link == "ssd":
			return nil, fmt.Errorf("fault: link_fails[%d]: permanent failure of %q is not survivable (all staging traffic crosses it)", i, l.Link)
		case strings.HasPrefix(l.Link, "rc"):
			var rc int
			if _, err := fmt.Sscanf(l.Link, "rc%d", &rc); err != nil {
				return nil, fmt.Errorf("fault: link_fails[%d]: cannot map link %q to GPUs", i, l.Link)
			}
			for _, g := range topo.GPUs {
				if g.RootComplex == rc {
					dead[g.ID] = true
				}
			}
		case strings.HasPrefix(l.Link, "gpu"):
			var id int
			var suffix string
			if _, err := fmt.Sscanf(l.Link, "gpu%d.%s", &id, &suffix); err != nil || (suffix != "link" && suffix != "nvlink") {
				return nil, fmt.Errorf("fault: link_fails[%d]: cannot map link %q to GPUs", i, l.Link)
			}
			dead[id] = true
		default:
			return nil, fmt.Errorf("fault: link_fails[%d]: cannot map link %q to GPUs", i, l.Link)
		}
	}
	ids := make([]int, 0, len(dead))
	for id := range dead {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids, nil
}

// applyPermanent binds the permanent-failure clauses to srv, scheduling one
// simulator failure event per clause. It rejects GPUs outside the topology
// and specs whose failures leave no surviving GPU — there is nothing to
// recover onto.
func applyPermanent(srv *hw.Server, spec *Spec, inj *Injection) error {
	n := len(srv.Topo.GPUs)
	deadGPUs := map[int]bool{}
	for i, g := range spec.GPUFails {
		if g.GPU >= n {
			return fmt.Errorf("fault: gpu_fails[%d]: gpu %d out of range (topology %q has %d GPUs)",
				i, g.GPU, srv.Topo.Name, n)
		}
		res := []*sim.Resource{srv.GPULinks[g.GPU]}
		if len(srv.NVLinks) > g.GPU {
			res = append(res, srv.NVLinks[g.GPU])
		}
		eng := []*sim.Engine{srv.ComputeEngines[g.GPU], srv.UploadEngines[g.GPU], srv.DownloadEngine[g.GPU]}
		srv.Sim.ScheduleFailure(g.At, fmt.Sprintf("gpu%d", g.GPU), res, eng)
		deadGPUs[g.GPU] = true
		inj.PermanentFailures++
	}
	for i, l := range spec.LinkFails {
		res := srv.ResourceByName(l.Link)
		if res == nil {
			return fmt.Errorf("fault: link_fails[%d]: no resource %q on topology %q (have %v)",
				i, l.Link, srv.Topo.Name, srv.ResourceNames())
		}
		srv.Sim.ScheduleFailure(l.At, l.Link, []*sim.Resource{res}, nil)
		inj.PermanentFailures++
	}
	if spec.HasPermanent() {
		if dead, err := spec.DeadGPUs(srv.Topo); err == nil {
			if len(dead) >= n {
				return fmt.Errorf("fault: permanent failures remove all %d GPUs of topology %q — no surviving GPU to recover onto", n, srv.Topo.Name)
			}
		}
	}
	return nil
}
