package fault

import (
	"fmt"

	"mobius/internal/sim"
)

// This file declares silent-data-corruption injection: seed-driven
// bit-flip / garbled-payload events on transfers (link traffic and
// checkpoint writes alike — a checkpoint write is a transfer across
// "drambus"/"ssd", so a rule matching those resources corrupts it).
// Binding installs a sim.CorruptionPolicy; whether a corrupted delivery
// is detected (checksummed retransmit, bounded by the simulator's
// budget) or accepted silently (tainting every consumer downstream) is
// decided by the run's sim.ChecksumConfig, not by the spec — the same
// scenario can be priced with and without detection.

// CorruptionFault corrupts delivery attempts of matching transfers. Each
// attempt of a matching transfer arrives corrupted independently with
// Probability, decided by the deterministic per-(seed, task, rule,
// attempt) hash.
type CorruptionFault struct {
	// Match selects transfers whose route crosses the named resource
	// ("rc0", "gpu2.link", "ssd", ...); "*" matches every transfer. The
	// first matching rule in spec order decides a transfer's fate.
	Match string `json:"match"`
	// Probability of each delivery attempt arriving corrupted; [0, 1).
	Probability float64 `json:"probability"`
}

// corruptionSalt decorrelates the corruption hash stream from the
// transient-retry stream, so a spec using both clauses with the same
// seed does not corrupt exactly the transfers it also retries.
const corruptionSalt int64 = 0x7c15bd1e

// validateCorruptions checks the corruption clauses against their
// documented ranges.
func (s *Spec) validateCorruptions() error {
	for i, c := range s.Corruptions {
		if c.Match == "" {
			return fmt.Errorf("fault: corruptions[%d]: missing match", i)
		}
		if c.Probability < 0 || c.Probability >= 1 {
			return fmt.Errorf("fault: corruptions[%d] (%s): probability %g out of range [0, 1)", i, c.Match, c.Probability)
		}
	}
	return nil
}

// corruptionPolicy implements sim.CorruptionPolicy: the first rule
// matching the transfer's route decides whether this delivery attempt is
// corrupted, drawn from the deterministic per-(seed, task, rule, attempt)
// hash.
func (inj *Injection) corruptionPolicy(t *sim.Task, attempt int) bool {
	for ri, rule := range inj.Spec.Corruptions {
		if !matchesRoute(rule.Match, t.Path()) {
			continue
		}
		if rule.Probability <= 0 {
			return false
		}
		if hash01(inj.Spec.Seed^corruptionSalt, uint64(t.ID()), uint64(ri), uint64(attempt)) < rule.Probability {
			inj.Corruptions++
			return true
		}
		return false
	}
	return false
}
