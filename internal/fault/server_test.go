package fault

import (
	"testing"
)

func TestServerFailValidation(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		ok   bool
	}{
		{"valid", Spec{ServerFails: []ServerFailFault{{Server: 0, At: 1}, {Server: 2, At: 0}}}, true},
		{"negative server", Spec{ServerFails: []ServerFailFault{{Server: -1, At: 1}}}, false},
		{"negative onset", Spec{ServerFails: []ServerFailFault{{Server: 0, At: -0.5}}}, false},
		{"twice", Spec{ServerFails: []ServerFailFault{{Server: 1, At: 1}, {Server: 1, At: 2}}}, false},
		{"outside horizon", Spec{HorizonS: 5, ServerFails: []ServerFailFault{{Server: 0, At: 5}}}, false},
		{"inside horizon", Spec{HorizonS: 5, ServerFails: []ServerFailFault{{Server: 0, At: 4.9}}}, true},
	}
	for _, tc := range cases {
		err := tc.spec.Validate()
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error: %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: validation passed, want error", tc.name)
		}
	}
}

// TestServerFailuresSorted: ServerFailures returns onset order whatever
// the spec order, and never aliases the spec's slice.
func TestServerFailuresSorted(t *testing.T) {
	s := &Spec{ServerFails: []ServerFailFault{{Server: 3, At: 9}, {Server: 1, At: 2}, {Server: 0, At: 2}}}
	fs := s.ServerFailures()
	if len(fs) != 3 || fs[0].Server != 1 || fs[1].Server != 0 || fs[2].Server != 3 {
		t.Fatalf("failures not in onset order (stable): %+v", fs)
	}
	fs[0].Server = 99
	if s.ServerFails[1].Server != 1 {
		t.Fatal("ServerFailures aliases the spec")
	}
	var nilSpec *Spec
	if nilSpec.ServerFailures() != nil || nilSpec.HasServerFails() {
		t.Fatal("nil spec must have no server failures")
	}
}

// TestWithoutCluster strips the fleet-level clauses and keeps the
// per-server conditions; a spec that was only fleet-level collapses to
// nil.
func TestWithoutCluster(t *testing.T) {
	s := &Spec{
		Seed:        11,
		HorizonS:    60,
		ServerFails: []ServerFailFault{{Server: 0, At: 5}},
		Planner:     []PlannerFault{{Match: "*", Probability: 0.1}},
		Stragglers:  []StragglerFault{{GPU: 1, Throughput: 0.5}},
	}
	c := s.WithoutCluster()
	if c == nil || len(c.ServerFails) != 0 || len(c.Planner) != 0 || c.HorizonS != 0 {
		t.Fatalf("fleet clauses not stripped: %+v", c)
	}
	if len(c.Stragglers) != 1 || c.Seed != 11 {
		t.Fatalf("per-server conditions lost: %+v", c)
	}
	if len(s.ServerFails) != 1 {
		t.Fatal("WithoutCluster mutated the receiver")
	}
	only := &Spec{ServerFails: []ServerFailFault{{Server: 0, At: 5}}}
	if only.WithoutCluster() != nil {
		t.Fatal("fleet-only spec should collapse to nil")
	}
	var nilSpec *Spec
	if nilSpec.WithoutCluster() != nil {
		t.Fatal("nil in, nil out")
	}
	if (&Spec{ServerFails: []ServerFailFault{{Server: 0}}}).Empty() {
		t.Fatal("server_fails spec must not be Empty")
	}
}
