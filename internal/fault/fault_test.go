package fault

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mobius/internal/hw"
)

var update = flag.Bool("update", false, "rewrite the golden .err files from current parser output")

// goldenTopo returns the topology a testdata spec is bound to in the
// Apply stage of the golden test. The default harness machine is the
// 4-GPU Topo 2+2; specs probing topology-dependent errors (failing the
// only GPU, GPU id out of range) declare their machine here.
func goldenTopo(base string) *hw.Topology {
	switch base {
	case "gpu-fail-only-gpu.json":
		return hw.Commodity(hw.RTX3090Ti, 1)
	default:
		return hw.Commodity(hw.RTX3090Ti, 2, 2)
	}
}

// TestParseJSONGolden runs every spec under testdata/ through the parser
// and, when it parses cleanly, through Apply on the spec's harness
// topology (topology-dependent errors like "no such GPU" only surface
// there). A spec with a sibling .err file must fail with exactly that
// message (the golden error a user would see); one without must parse and
// apply cleanly. Regenerate goldens with
// `go test ./internal/fault -run Golden -update`.
func TestParseJSONGolden(t *testing.T) {
	specs, err := filepath.Glob("testdata/*.json")
	if err != nil || len(specs) == 0 {
		t.Fatalf("no testdata specs: %v", err)
	}
	for _, path := range specs {
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			spec, perr := ParseJSON(data)
			if perr == nil {
				srv, berr := hw.Build(goldenTopo(filepath.Base(path)))
				if berr != nil {
					t.Fatal(berr)
				}
				_, perr = Apply(srv, spec)
			}
			golden := strings.TrimSuffix(path, ".json") + ".err"
			if *update {
				if perr == nil {
					os.Remove(golden)
					return
				}
				if err := os.WriteFile(golden, []byte(perr.Error()+"\n"), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, gerr := os.ReadFile(golden)
			switch {
			case os.IsNotExist(gerr):
				if perr != nil {
					t.Fatalf("spec should parse, got: %v", perr)
				}
			case gerr != nil:
				t.Fatal(gerr)
			case perr == nil:
				t.Fatalf("spec should fail with %q, parsed cleanly", strings.TrimSpace(string(want)))
			case perr.Error() != strings.TrimSpace(string(want)):
				t.Fatalf("error mismatch:\n got: %s\nwant: %s", perr.Error(), strings.TrimSpace(string(want)))
			}
		})
	}
}

// TestValidSpecRoundTrips checks the documented example parses and
// fingerprints deterministically.
func TestValidSpecRoundTrips(t *testing.T) {
	data, err := os.ReadFile("testdata/degraded-rc0.json")
	if err != nil {
		t.Fatal(err)
	}
	s1, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Empty() {
		t.Fatal("spec should not be empty")
	}
	if s1.Fingerprint() == "" || s1.Fingerprint() != s2.Fingerprint() {
		t.Fatalf("fingerprint not stable: %q vs %q", s1.Fingerprint(), s2.Fingerprint())
	}
	s2.Seed++
	if s1.Fingerprint() == s2.Fingerprint() {
		t.Fatal("different specs must fingerprint differently")
	}
}

func TestNilSpecSemantics(t *testing.T) {
	var s *Spec
	if !s.Empty() {
		t.Fatal("nil spec must be empty")
	}
	if s.Fingerprint() != "" {
		t.Fatalf("nil spec fingerprint: %q", s.Fingerprint())
	}
}

// TestHash01Deterministic pins down the sole randomness source: equal
// inputs hash equally, any differing coordinate decorrelates, and values
// stay in [0, 1).
func TestHash01Deterministic(t *testing.T) {
	base := hash01(42, 7, 1, 0)
	if base != hash01(42, 7, 1, 0) {
		t.Fatal("hash01 not deterministic")
	}
	for _, v := range []float64{
		hash01(43, 7, 1, 0), // seed
		hash01(42, 8, 1, 0), // task
		hash01(42, 7, 2, 0), // rule
		hash01(42, 7, 1, 1), // attempt
	} {
		if v == base {
			t.Fatalf("coordinate change did not change hash (%g)", v)
		}
	}
	for i := 0; i < 1000; i++ {
		if v := hash01(1, uint64(i)); v < 0 || v >= 1 {
			t.Fatalf("hash01 out of [0,1): %g", v)
		}
	}
}

func buildServer(t *testing.T) *hw.Server {
	t.Helper()
	srv, err := hw.Build(hw.Commodity(hw.RTX3090Ti, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestApplyBindsSpec checks the bookkeeping of a successful Apply: one
// capacity event per unbounded window, two per bounded one, straggler and
// pool counts, and the retry policy installed only when transient rules
// exist.
func TestApplyBindsSpec(t *testing.T) {
	srv := buildServer(t)
	spec := &Spec{
		Links: []LinkFault{
			{Link: "rc0", Multiplier: 0.25, Start: 0},
			{Link: "drambus", Multiplier: 0.5, Start: 1, End: 2},
		},
		Stragglers:  []StragglerFault{{GPU: 3, Throughput: 0.5}},
		Transient:   []TransientFault{{Match: "*", Probability: 0.1, BackoffMS: 1}},
		MemPressure: []MemPressureFault{{Pool: "dram", ReserveBytes: 1e9}},
	}
	inj, err := Apply(srv, spec)
	if err != nil {
		t.Fatal(err)
	}
	if inj.LinkEvents != 3 {
		t.Fatalf("link events: got %d, want 3 (degrade+degrade+restore)", inj.LinkEvents)
	}
	if inj.Stragglers != 1 || inj.PoolsSqueezed != 1 {
		t.Fatalf("counts wrong: %+v", inj)
	}
	if srv.Sim.RetryPolicy == nil {
		t.Fatal("retry policy not installed")
	}
	if got := srv.ComputeEngines[3].Throughput(); got != 0.5 {
		t.Fatalf("straggler throughput: got %g", got)
	}
	if !strings.Contains(inj.String(), "1 stragglers") {
		t.Fatalf("summary: %s", inj)
	}
}

// TestApplyRejectsUnknownNames checks the descriptive errors for spec
// clauses that do not match the topology.
func TestApplyRejectsUnknownNames(t *testing.T) {
	cases := []struct {
		spec *Spec
		want string
	}{
		{&Spec{Links: []LinkFault{{Link: "rc9", Multiplier: 0.5}}}, `no resource "rc9"`},
		{&Spec{Stragglers: []StragglerFault{{GPU: 99, Throughput: 0.5}}}, "gpu 99 out of range"},
		{&Spec{MemPressure: []MemPressureFault{{Pool: "hbm", ReserveBytes: 1}}}, `no pool "hbm"`},
	}
	for _, c := range cases {
		if _, err := Apply(buildServer(t), c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("want error containing %q, got %v", c.want, err)
		}
	}
}

// TestApplyRejectsEmptyingAPool checks that reserving a pool's whole
// capacity fails loudly instead of guaranteeing a later deadlock.
func TestApplyRejectsEmptyingAPool(t *testing.T) {
	srv := buildServer(t)
	spec := &Spec{MemPressure: []MemPressureFault{{Pool: "dram", ReserveBytes: 1e18}}}
	if _, err := Apply(srv, spec); err == nil || !strings.Contains(err.Error(), "empties pool") {
		t.Fatalf("want 'empties pool' error, got %v", err)
	}
}
