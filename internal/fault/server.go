package fault

import (
	"fmt"
	"sort"
)

// This file declares fleet-level failure domains: whole simulated servers
// dropping out of a cluster run. Like the Planner clauses, server_fails
// is not bound by the per-server Apply — a single machine cannot lose
// itself mid-step and keep simulating — it is consumed by
// internal/cluster, which halts the victim's in-flight job, prices the
// checkpoint-consistent drain with the elastic machinery, and re-lands
// the work on the survivors.

// ServerFailFault removes one whole server from a cluster permanently at
// time At: its running job is interrupted at the onset, its queue is
// re-routed once the loss is detected, and its plan cache dies with it.
type ServerFailFault struct {
	// Server indexes the cluster's fleet (0-based).
	Server int `json:"server"`
	// At is the onset time in simulated cluster seconds.
	At float64 `json:"at_s"`
}

func (f ServerFailFault) String() string {
	return fmt.Sprintf("server %d fails at t=%.4g", f.Server, f.At)
}

// validateServers checks the server_fails clauses: non-negative indices
// and onsets, onsets inside the horizon when one is declared, and at most
// one failure per server (a server cannot die twice).
func (s *Spec) validateServers() error {
	seen := map[int]bool{}
	for i, f := range s.ServerFails {
		if f.Server < 0 {
			return fmt.Errorf("fault: server_fails[%d]: negative server %d", i, f.Server)
		}
		if f.At < 0 {
			return fmt.Errorf("fault: server_fails[%d] (server %d): negative onset %g", i, f.Server, f.At)
		}
		if s.HorizonS > 0 && f.At >= s.HorizonS {
			return fmt.Errorf("fault: server_fails[%d] (server %d): onset %g outside horizon [0, %g)", i, f.Server, f.At, s.HorizonS)
		}
		if seen[f.Server] {
			return fmt.Errorf("fault: server_fails[%d]: server %d fails twice", i, f.Server)
		}
		seen[f.Server] = true
	}
	return nil
}

// HasServerFails reports whether the spec declares any fleet-level
// server loss.
func (s *Spec) HasServerFails() bool { return s != nil && len(s.ServerFails) > 0 }

// ServerFailures returns the server losses sorted by onset (ties: spec
// order), the order a cluster run consumes them in.
func (s *Spec) ServerFailures() []ServerFailFault {
	if s == nil || len(s.ServerFails) == 0 {
		return nil
	}
	out := make([]ServerFailFault, len(s.ServerFails))
	copy(out, s.ServerFails)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// WithoutCluster returns a copy of the spec with the fleet-level clauses
// removed: server_fails and server_restarts (consumed by the cluster
// event loop), planner clauses (consumed by the planning service),
// store_faults (consumed by the plan store), plus the horizon that
// scopes them. What remains are the per-server conditions — degraded
// links, stragglers, transient retries, memory pressure — that every
// server of the fleet simulates its training steps under. Nil in, nil
// out.
func (s *Spec) WithoutCluster() *Spec {
	if s == nil {
		return nil
	}
	c := *s
	c.ServerFails = nil
	c.ServerRestarts = nil
	c.Planner = nil
	c.StoreFaults = nil
	c.HorizonS = 0
	if c.Empty() {
		return nil
	}
	return &c
}
