package fault

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzParseJSON drives the fault-spec parser with arbitrary bytes, seeded
// from the golden-file corpus (every testdata spec, valid and invalid,
// plus the checked-in corpus under testdata/fuzz). The parser must never
// panic; every rejection must be a structured "fault:"-prefixed error;
// every accepted spec must validate, fingerprint stably, and re-parse
// from its own fingerprint to an equal fingerprint (the fingerprint is a
// cache key, so parse∘fingerprint must be idempotent).
func FuzzParseJSON(f *testing.F) {
	specs, err := filepath.Glob("testdata/*.json")
	if err != nil || len(specs) == 0 {
		f.Fatalf("no testdata seeds: %v", err)
	}
	for _, path := range specs {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"seed": 1, "corruptions": [{"match": "*", "probability": 0.5}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := ParseJSON(data)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "fault:") {
				t.Fatalf("unstructured parse error: %v", err)
			}
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("ParseJSON accepted a spec Validate rejects: %v", verr)
		}
		fp := spec.Fingerprint()
		if fp == "" || fp != spec.Fingerprint() {
			t.Fatalf("fingerprint not stable: %q", fp)
		}
		spec2, err := ParseJSON([]byte(fp))
		if err != nil {
			t.Fatalf("fingerprint of an accepted spec does not re-parse: %v\n%s", err, fp)
		}
		if fp2 := spec2.Fingerprint(); fp2 != fp {
			t.Fatalf("fingerprint round-trip not idempotent:\n got %q\nwant %q", fp2, fp)
		}
	})
}
