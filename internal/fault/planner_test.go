package fault

import "testing"

// TestPlannerAttemptDeterministicAndRuleOrdered pins the planner-fault
// clause semantics: decisions are pure functions of (seed, key, rule,
// attempt); the first matching rule wins; MaxFailures caps injected
// failures so attempt MaxFailures always reaches the solver; and
// different seeds decorrelate the failure pattern.
func TestPlannerAttemptDeterministicAndRuleOrdered(t *testing.T) {
	spec := &Spec{
		Seed: 11,
		Planner: []PlannerFault{
			{Match: "15B", Probability: 0.9, LatencyMS: 20, MaxFailures: 2},
			{Match: "*", Probability: 0, LatencyMS: 5},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}

	// Replays are bitwise-identical.
	for attempt := 0; attempt < 4; attempt++ {
		l1, f1 := spec.PlannerAttempt("15B", 0xfeed, attempt)
		l2, f2 := spec.PlannerAttempt("15B", 0xfeed, attempt)
		if l1 != l2 || f1 != f2 {
			t.Fatalf("attempt %d not deterministic: (%v,%v) vs (%v,%v)", attempt, l1, f1, l2, f2)
		}
	}

	// First matching rule decides: "15B" takes rule 0's latency, other
	// models fall through to the wildcard.
	if l, _ := spec.PlannerAttempt("15B", 1, 0); l != 0.020 {
		t.Errorf("15B latency: got %v want 0.020", l)
	}
	if l, f := spec.PlannerAttempt("8B", 1, 0); l != 0.005 || f {
		t.Errorf("8B should hit the zero-probability wildcard: latency %v fail %v", l, f)
	}

	// MaxFailures caps the injected failures: attempts past the cap never
	// fail, whatever the hash says.
	if _, f := spec.PlannerAttempt("15B", 0xfeed, 2); f {
		t.Errorf("attempt at MaxFailures still failed")
	}

	// With probability 0.9 and 2 allowed failures, some key must fail at
	// attempt 0 — and a different seed must produce a different pattern
	// over enough keys.
	fails := 0
	flips := 0
	other := &Spec{Seed: 12, Planner: spec.Planner}
	for key := uint64(0); key < 64; key++ {
		_, f1 := spec.PlannerAttempt("15B", key, 0)
		_, f2 := other.PlannerAttempt("15B", key, 0)
		if f1 {
			fails++
		}
		if f1 != f2 {
			flips++
		}
	}
	if fails == 0 {
		t.Errorf("probability 0.9 never failed over 64 keys")
	}
	if flips == 0 {
		t.Errorf("seeds 11 and 12 produced identical failure patterns")
	}

	// A nil spec and a planner-free spec inject nothing.
	var nilSpec *Spec
	if l, f := nilSpec.PlannerAttempt("15B", 1, 0); l != 0 || f {
		t.Errorf("nil spec injected something")
	}
	if (&Spec{}).Empty() != true || spec.Empty() {
		t.Errorf("Empty() does not account for planner clauses")
	}
}
