package fault

import "testing"

// TestStoreOpDeterministic: decisions are a pure function of
// (seed, rule, key, seq) — replays agree bit for bit, and the decision
// stream varies across seq so probabilities are per operation, not
// per key.
func TestStoreOpDeterministic(t *testing.T) {
	spec := &Spec{Seed: 3, StoreFaults: []StoreFault{
		{Op: "put", Mode: StoreModeTorn, Probability: 0.5, LatencyMS: 1},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	varied := false
	var first StoreDecision
	for seq := uint64(0); seq < 64; seq++ {
		a := spec.StoreOp(StoreOpPut, 0xabcdef, seq)
		b := spec.StoreOp(StoreOpPut, 0xabcdef, seq)
		if a != b {
			t.Fatalf("seq %d: replay diverged: %+v vs %+v", seq, a, b)
		}
		if a.LatencyS != 1e-3 {
			t.Fatalf("seq %d: latency %g, want 1ms", seq, a.LatencyS)
		}
		if a.Fail {
			t.Fatalf("seq %d: torn rule produced a clean failure on a put", seq)
		}
		if seq == 0 {
			first = a
		} else if a.Torn != first.Torn {
			varied = true
		}
	}
	if !varied {
		t.Fatal("a 0.5-probability rule decided 64 operations identically")
	}
}

// TestStoreOpMatching: op filters apply, the first matching rule wins,
// and torn mode degrades to a clean failure for non-put operations
// matched through the wildcard.
func TestStoreOpMatching(t *testing.T) {
	spec := &Spec{Seed: 1, StoreFaults: []StoreFault{
		{Op: "delete", Mode: StoreModeFail, Probability: 1},
		{Op: "*", Mode: StoreModeTorn, Probability: 1},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if d := spec.StoreOp(StoreOpDelete, 1, 0); !d.Fail || d.Torn {
		t.Fatalf("delete hit the wrong rule: %+v", d)
	}
	if d := spec.StoreOp(StoreOpPut, 1, 0); !d.Torn || d.Fail {
		t.Fatalf("put should tear via the wildcard rule: %+v", d)
	}
	// A wildcard torn rule cannot tear a delete; it fails cleanly.
	spec2 := &Spec{Seed: 1, StoreFaults: []StoreFault{{Op: "*", Mode: StoreModeTorn, Probability: 1}}}
	if d := spec2.StoreOp(StoreOpDelete, 1, 0); !d.Fail || d.Torn {
		t.Fatalf("wildcard torn on delete: %+v, want a clean failure", d)
	}
	// Zero probability matches but never fires; a nil spec is inert.
	spec3 := &Spec{StoreFaults: []StoreFault{{Op: "put", Probability: 0, LatencyMS: 5}}}
	if d := spec3.StoreOp(StoreOpPut, 1, 0); d.Fail || d.Torn || d.LatencyS != 5e-3 {
		t.Fatalf("zero-probability rule: %+v", d)
	}
	var nilSpec *Spec
	if d := nilSpec.StoreOp(StoreOpPut, 1, 0); d != (StoreDecision{}) {
		t.Fatalf("nil spec injected %+v", d)
	}
}

// TestRestartSchedule: sorted by onset, stable for ties, nil-safe.
func TestRestartSchedule(t *testing.T) {
	spec := &Spec{ServerRestarts: []ServerRestartFault{
		{Server: 2, At: 9},
		{Server: 0, At: 3},
		{Server: 1, At: 9, Cold: true},
	}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if !spec.HasServerRestarts() {
		t.Fatal("HasServerRestarts = false")
	}
	sched := spec.RestartSchedule()
	if len(sched) != 3 || sched[0].Server != 0 || sched[1].Server != 2 || sched[2].Server != 1 {
		t.Fatalf("schedule order %+v", sched)
	}
	// The spec's own slice is untouched.
	if spec.ServerRestarts[0].Server != 2 {
		t.Fatal("RestartSchedule mutated the spec")
	}
	var nilSpec *Spec
	if nilSpec.HasServerRestarts() || nilSpec.RestartSchedule() != nil {
		t.Fatal("nil spec should have no restarts")
	}
}

// TestWithoutClusterStripsStoreAndRestartClauses: the per-server spec a
// fleet member consumes must not re-apply fleet-level clauses.
func TestWithoutClusterStripsStoreAndRestartClauses(t *testing.T) {
	spec := &Spec{
		Seed:           9,
		ServerFails:    []ServerFailFault{{Server: 0, At: 1}},
		ServerRestarts: []ServerRestartFault{{Server: 1, At: 2}},
		StoreFaults:    []StoreFault{{Op: "put", Probability: 1}},
	}
	// Only cluster-level clauses: the per-server residue is empty, nil.
	if stripped := spec.WithoutCluster(); stripped != nil {
		t.Fatalf("all-cluster spec should strip to nil, got %+v", stripped)
	}
	// With a per-server clause alongside, it survives — without the
	// cluster-level ones.
	spec.Stragglers = []StragglerFault{{GPU: 0, Throughput: 0.5}}
	stripped := spec.WithoutCluster()
	if stripped == nil {
		t.Fatal("spec with per-server clauses should survive stripping")
	}
	if len(stripped.ServerFails) != 0 || len(stripped.ServerRestarts) != 0 || len(stripped.StoreFaults) != 0 {
		t.Fatalf("cluster-level clauses leaked: %+v", stripped)
	}
	if len(stripped.Stragglers) != 1 {
		t.Fatal("per-server clause lost in stripping")
	}
	if len(spec.ServerRestarts) != 1 || len(spec.StoreFaults) != 1 {
		t.Fatal("WithoutCluster mutated the original")
	}
}
