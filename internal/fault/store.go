package fault

import (
	"fmt"
	"sort"
)

// This file declares the persistence-layer fault clauses: I/O faults on
// the plan store's write-behind path (store_faults) and whole-server
// process restarts (server_restarts). Like the Planner and ServerFails
// clauses, neither is bound by the per-server Apply — store faults are
// consumed by internal/planstore, restarts by internal/cluster.

// StoreFault injects I/O failures into the plan store's write-behind
// worker (internal/planstore). Each matching operation suffers LatencyMS
// of injected device latency and then, with Probability, fails — either
// cleanly (mode "fail": nothing reaches the directory) or as a torn
// write (mode "torn": only a prefix of the record lands on the final
// path, modeling a crash mid-write or a partial page flush). Decisions
// are a pure function of (seed, rule, key, op sequence), so a scenario
// replays the same faults regardless of goroutine scheduling.
type StoreFault struct {
	// Op selects operations: "put", "delete", or "*" for both.
	Op string `json:"op"`
	// Mode is the failure shape: "fail" (default; the write never
	// happens) or "torn" (a prefix of the record lands on the final
	// path). Torn mode applies to puts only.
	Mode string `json:"mode,omitempty"`
	// Probability of each matching operation failing; [0, 1]. 1 models
	// a fully broken disk — the store keeps serving from memory and a
	// restart simply comes up cold.
	Probability float64 `json:"probability"`
	// TornAtByte fixes the tear point of a torn write (bytes of the
	// record that reach disk). 0 derives it deterministically from the
	// operation hash, so a matrix of seeds tears at varied offsets.
	TornAtByte int `json:"torn_at_byte,omitempty"`
	// LatencyMS is added to every matching operation before it runs,
	// modeling a contended or degraded device.
	LatencyMS float64 `json:"latency_ms,omitempty"`
}

// Store fault modes and the op wildcard.
const (
	StoreOpPut    = "put"
	StoreOpDelete = "delete"
	StoreModeFail = "fail"
	StoreModeTorn = "torn"
)

// StoreDecision is the fate of one plan-store operation.
type StoreDecision struct {
	// LatencyS is injected device latency in seconds.
	LatencyS float64
	// Fail means the operation does not happen (clean failure).
	Fail bool
	// Torn means a put lands as a partial record on the final path.
	// TornAtByte is the tear point; 0 means the store derives it from
	// TornHash (a uniform [0,1) fraction of the record length).
	Torn       bool
	TornAtByte int
	TornHash   float64
}

// storeSalt separates the store-fault hash domain from every other
// decision stream; tearSalt separates the tear-point draw from the
// fail/torn draw.
const (
	storeSalt = 0x73746f72 // "stor"
	tearSalt  = 0x74656172 // "tear"
)

// StoreOp decides the fate of one plan-store operation: op is "put" or
// "delete", key a stable hash of the record key, seq the store's
// monotonic operation counter. The first matching rule decides; a nil
// spec injects nothing.
func (s *Spec) StoreOp(op string, key, seq uint64) StoreDecision {
	var d StoreDecision
	if s == nil {
		return d
	}
	for ri, rule := range s.StoreFaults {
		if rule.Op != "*" && rule.Op != op {
			continue
		}
		d.LatencyS = rule.LatencyMS * 1e-3
		if rule.Probability <= 0 {
			return d
		}
		if hash01(s.Seed, storeSalt, uint64(ri), key, seq) >= rule.Probability {
			return d
		}
		if rule.Mode == StoreModeTorn && op == StoreOpPut {
			d.Torn = true
			d.TornAtByte = rule.TornAtByte
			d.TornHash = hash01(s.Seed, tearSalt, uint64(ri), key, seq)
		} else {
			d.Fail = true
		}
		return d
	}
	return d
}

// validateStore checks the store_faults clauses against their documented
// ranges.
func (s *Spec) validateStore() error {
	for i, f := range s.StoreFaults {
		switch f.Op {
		case StoreOpPut, StoreOpDelete, "*":
		case "":
			return fmt.Errorf("fault: store_faults[%d]: missing op (want %q, %q or \"*\")", i, StoreOpPut, StoreOpDelete)
		default:
			return fmt.Errorf("fault: store_faults[%d]: unknown op %q (want %q, %q or \"*\")", i, f.Op, StoreOpPut, StoreOpDelete)
		}
		switch f.Mode {
		case "", StoreModeFail:
		case StoreModeTorn:
			if f.Op == StoreOpDelete {
				return fmt.Errorf("fault: store_faults[%d]: torn mode applies to puts, not deletes", i)
			}
		default:
			return fmt.Errorf("fault: store_faults[%d]: unknown mode %q (want %q or %q)", i, f.Mode, StoreModeFail, StoreModeTorn)
		}
		if f.Probability < 0 || f.Probability > 1 {
			return fmt.Errorf("fault: store_faults[%d] (%s): probability %g out of range [0, 1]", i, f.Op, f.Probability)
		}
		if f.TornAtByte < 0 {
			return fmt.Errorf("fault: store_faults[%d] (%s): negative torn_at_byte %d", i, f.Op, f.TornAtByte)
		}
		if f.TornAtByte > 0 && f.Mode != StoreModeTorn {
			return fmt.Errorf("fault: store_faults[%d] (%s): torn_at_byte needs mode %q", i, f.Op, StoreModeTorn)
		}
		if f.LatencyMS < 0 {
			return fmt.Errorf("fault: store_faults[%d] (%s): negative latency_ms %g", i, f.Op, f.LatencyMS)
		}
	}
	return nil
}

// ServerRestartFault bounces one fleet server: the process dies at At
// (in-flight work rewinds to its checkpoint exactly as under a
// ServerFailFault), and the server rejoins RestartLatencyS later — warm
// from its persisted plan store, or cold when Cold is set (or the fleet
// runs without persistence and the restart is declared cold).
type ServerRestartFault struct {
	// Server indexes the cluster's fleet (0-based).
	Server int `json:"server"`
	// At is the crash time in simulated cluster seconds.
	At float64 `json:"at_s"`
	// RestartLatencyS is the downtime before the server rejoins; 0
	// takes the cluster's default (5s).
	RestartLatencyS float64 `json:"restart_latency_s,omitempty"`
	// Cold discards the server's plan cache across the bounce even when
	// a persistent store is configured — the cold-start baseline the
	// warm path is measured against.
	Cold bool `json:"cold,omitempty"`
}

func (f ServerRestartFault) String() string {
	kind := "warm"
	if f.Cold {
		kind = "cold"
	}
	return fmt.Sprintf("server %d restarts (%s) at t=%.4g", f.Server, kind, f.At)
}

// validateRestarts checks the server_restarts clauses: non-negative
// indices, onsets inside the horizon, at most one restart per server,
// and no overlap with a permanent server_fails loss (a server cannot
// both die for good and come back).
func (s *Spec) validateRestarts() error {
	dead := map[int]bool{}
	for _, f := range s.ServerFails {
		dead[f.Server] = true
	}
	seen := map[int]bool{}
	for i, f := range s.ServerRestarts {
		if f.Server < 0 {
			return fmt.Errorf("fault: server_restarts[%d]: negative server %d", i, f.Server)
		}
		if f.At < 0 {
			return fmt.Errorf("fault: server_restarts[%d] (server %d): negative onset %g", i, f.Server, f.At)
		}
		if s.HorizonS > 0 && f.At >= s.HorizonS {
			return fmt.Errorf("fault: server_restarts[%d] (server %d): onset %g outside horizon [0, %g)", i, f.Server, f.At, s.HorizonS)
		}
		if f.RestartLatencyS < 0 {
			return fmt.Errorf("fault: server_restarts[%d] (server %d): negative restart_latency_s %g", i, f.Server, f.RestartLatencyS)
		}
		if dead[f.Server] {
			return fmt.Errorf("fault: server_restarts[%d]: server %d both fails permanently and restarts", i, f.Server)
		}
		if seen[f.Server] {
			return fmt.Errorf("fault: server_restarts[%d]: server %d restarts twice", i, f.Server)
		}
		seen[f.Server] = true
	}
	return nil
}

// HasServerRestarts reports whether the spec declares any server bounce.
func (s *Spec) HasServerRestarts() bool { return s != nil && len(s.ServerRestarts) > 0 }

// RestartSchedule returns the restarts sorted by onset (ties: spec
// order), the order a cluster run consumes them in.
func (s *Spec) RestartSchedule() []ServerRestartFault {
	if s == nil || len(s.ServerRestarts) == 0 {
		return nil
	}
	out := make([]ServerRestartFault, len(s.ServerRestarts))
	copy(out, s.ServerRestarts)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}
