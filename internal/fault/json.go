package fault

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// ParseJSON decodes a fault spec from JSON and validates it. Unknown
// fields are rejected so a typo in a spec file ("multipler") fails loudly
// instead of silently injecting nothing.
//
// Example spec:
//
//	{
//	  "seed": 42,
//	  "links": [{"link": "rc0", "multiplier": 0.25, "start_s": 0}],
//	  "stragglers": [{"gpu": 2, "throughput": 0.5}],
//	  "transient": [{"match": "drambus", "probability": 0.05, "backoff_ms": 2}],
//	  "mem_pressure": [{"pool": "gpu0.mem", "reserve_bytes": 2e9}]
//	}
func ParseJSON(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	spec := &Spec{}
	if err := dec.Decode(spec); err != nil {
		return nil, fmt.Errorf("fault: parse spec: %w", err)
	}
	// A spec file holds exactly one JSON object.
	if dec.More() {
		return nil, fmt.Errorf("fault: parse spec: trailing data after the spec object")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}

// Fingerprint returns a stable identity string for the spec, suitable as
// a cache-key component so faulted runs never collide with nominal ones.
// The nil spec fingerprints to "".
func (s *Spec) Fingerprint() string {
	if s == nil {
		return ""
	}
	// Struct fields marshal in declaration order, so the encoding is
	// deterministic for a given spec value.
	b, err := json.Marshal(s)
	if err != nil {
		return fmt.Sprintf("unmarshalable:%v", err)
	}
	return string(b)
}
