package fault_test

// The fault matrix is the smoke test of the whole injection stack (the
// Makefile's check-faults target runs it under -race): every fault class,
// alone and combined, applied to Mobius and GPipe end-to-end through
// core.Run. The invariants are coarse on purpose — no errors, no panics,
// injection recorded, and a faulted run never finishes faster than the
// nominal one.

import (
	"testing"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/model"
)

func matrixSpecs() map[string]*fault.Spec {
	link := fault.LinkFault{Link: "rc0", Multiplier: 0.25, Start: 0, End: 2}
	straggler := fault.StragglerFault{GPU: 1, Throughput: 0.5}
	transient := fault.TransientFault{Match: "*", Probability: 0.2, BackoffMS: 1}
	pressure := fault.MemPressureFault{Pool: "dram", ReserveBytes: 4e9}
	return map[string]*fault.Spec{
		"link":      {Links: []fault.LinkFault{link}},
		"straggler": {Stragglers: []fault.StragglerFault{straggler}},
		"transient": {Seed: 7, Transient: []fault.TransientFault{transient}},
		"pressure":  {MemPressure: []fault.MemPressureFault{pressure}},
		"combined": {
			Seed:        7,
			Links:       []fault.LinkFault{link},
			Stragglers:  []fault.StragglerFault{straggler},
			Transient:   []fault.TransientFault{transient},
			MemPressure: []fault.MemPressureFault{pressure},
		},
	}
}

func TestFaultMatrix(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	m := model.GPT3B
	for _, sys := range []core.System{core.SystemMobius, core.SystemGPipe} {
		nom, err := core.Run(sys, core.Options{Model: m, Topology: topo})
		if err != nil {
			t.Fatalf("%s nominal: %v", sys, err)
		}
		if nom.OOM {
			t.Fatalf("%s nominal: unexpected OOM", sys)
		}
		for name, spec := range matrixSpecs() {
			r, err := core.Run(sys, core.Options{Model: m, Topology: topo, Faults: spec})
			if err != nil {
				t.Fatalf("%s/%s: %v", sys, name, err)
			}
			if r.OOM {
				t.Fatalf("%s/%s: unexpected OOM (%s)", sys, name, r.OOMCause)
			}
			if r.FaultInjection == nil {
				t.Fatalf("%s/%s: injection not recorded", sys, name)
			}
			if r.StepTime < nom.StepTime-1e-9 {
				t.Errorf("%s/%s: faulted step %.4f faster than nominal %.4f", sys, name, r.StepTime, nom.StepTime)
			}
			if len(spec.Transient) > 0 && r.FaultInjection.Retries == 0 {
				t.Errorf("%s/%s: transient rule injected no retries", sys, name)
			}
		}
	}
}

// TestFaultMatrixSevereMemPressureIsStructuredOOM squeezes one GPU's pool
// until the plan cannot fit: the run must end in a structured OOM report,
// not a panic or a deadlock.
func TestFaultMatrixSevereMemPressureIsStructuredOOM(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	spec := &fault.Spec{MemPressure: []fault.MemPressureFault{{Pool: "gpu0.mem", ReserveBytes: 23.8e9}}}
	for _, sys := range []core.System{core.SystemMobius, core.SystemGPipe} {
		r, err := core.Run(sys, core.Options{Model: model.GPT3B, Topology: topo, Faults: spec})
		if err != nil {
			t.Fatalf("%s: %v", sys, err)
		}
		if !r.OOM {
			t.Fatalf("%s: squeezing gpu0.mem to 0.2 GB should OOM", sys)
		}
		if r.OOMCause == "" {
			t.Fatalf("%s: OOM without a structured cause", sys)
		}
	}
}

// TestFaultMatrixDeterministic replays the combined scenario and requires
// bit-identical step times — the fault layer must not introduce any
// run-to-run nondeterminism.
func TestFaultMatrixDeterministic(t *testing.T) {
	topo := hw.Commodity(hw.RTX3090Ti, 2, 2)
	spec := matrixSpecs()["combined"]
	var prev float64
	for i := 0; i < 2; i++ {
		r, err := core.Run(core.SystemMobius, core.Options{Model: model.GPT3B, Topology: topo, Faults: spec})
		if err != nil || r.OOM {
			t.Fatalf("run %d: err=%v oom=%v", i, err, r.OOM)
		}
		if i > 0 && r.StepTime != prev {
			t.Fatalf("faulted replay diverged: %v vs %v", r.StepTime, prev)
		}
		prev = r.StepTime
	}
}
