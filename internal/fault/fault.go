// Package fault implements deterministic, seed-driven fault injection for
// the simulated hardware. A Spec declares degraded conditions — link
// bandwidth windows, straggler GPUs, transient transfer failures, memory
// pressure — and Apply binds it to a built hw.Server, translating each
// clause into the simulator's low-level knobs (scheduled capacity events,
// engine throughput multipliers, retry policies, pool resizing).
//
// Determinism: every effect is a pure function of the spec. Transient
// failures are decided by a splitmix64 hash of (seed, task id, rule,
// attempt), never by a shared RNG stream, so the injected retries do not
// depend on the order the simulator happens to start transfers in — two
// runs of the same DAG under the same spec produce identical schedules,
// and adding an unrelated fault clause never reshuffles the failures of
// an existing one.
package fault

import (
	"fmt"
	"sort"

	"mobius/internal/hw"
	"mobius/internal/sim"
)

// Spec is a declarative fault scenario applied to one simulated server.
type Spec struct {
	// Seed drives the transient-failure hash; different seeds produce
	// statistically independent failure patterns.
	Seed int64 `json:"seed"`

	Links       []LinkFault        `json:"links,omitempty"`
	Stragglers  []StragglerFault   `json:"stragglers,omitempty"`
	Transient   []TransientFault   `json:"transient,omitempty"`
	MemPressure []MemPressureFault `json:"mem_pressure,omitempty"`

	// Corruptions are silent-data-corruption events on transfers (see
	// corruption.go); detection depends on the run's checksum config.
	Corruptions []CorruptionFault `json:"corruptions,omitempty"`

	// Planner injects latency and transient failures into the planning
	// service (internal/plansvc); the simulator-level Apply ignores this
	// clause, since planning happens before any server is built.
	Planner []PlannerFault `json:"planner,omitempty"`

	// HorizonS, when positive, bounds the simulated window the spec was
	// written for: permanent-failure onsets must land inside [0, HorizonS).
	// Zero means unbounded.
	HorizonS float64 `json:"horizon_s,omitempty"`

	// GPUFails and LinkFails are permanent failures (see permanent.go);
	// the run halts at the onset with a structured sim.ResourceLostError.
	GPUFails  []GPUFailFault  `json:"gpu_fails,omitempty"`
	LinkFails []LinkFailFault `json:"link_fails,omitempty"`

	// ServerFails are fleet-level failure domains (see server.go): whole
	// servers dropping out of a cluster run. The per-server Apply ignores
	// them, like the Planner clauses — they are consumed by
	// internal/cluster.
	ServerFails []ServerFailFault `json:"server_fails,omitempty"`

	// StoreFaults inject I/O failures (clean write failures, torn
	// writes, device latency) into the plan store's write-behind path
	// (see store.go); they are consumed by internal/planstore.
	StoreFaults []StoreFault `json:"store_faults,omitempty"`

	// ServerRestarts bounce whole fleet servers: crash at At, rejoin
	// warm or cold after RestartLatencyS (see store.go); consumed by
	// internal/cluster.
	ServerRestarts []ServerRestartFault `json:"server_restarts,omitempty"`
}

// LinkFault degrades one bandwidth resource to a fraction of its nominal
// capacity during [Start, End) (End 0 means "until the run completes").
type LinkFault struct {
	// Link is the simulator resource name: "rc0", "gpu3.link",
	// "drambus", "ssd", "gpu0.nvlink".
	Link string `json:"link"`
	// Multiplier scales the nominal capacity; (0, 1].
	Multiplier float64 `json:"multiplier"`
	// Start and End bound the degradation window in simulated seconds.
	Start float64 `json:"start_s"`
	End   float64 `json:"end_s,omitempty"`
}

// StragglerFault slows one GPU's compute engine to a fraction of its
// nominal throughput for the whole run.
type StragglerFault struct {
	GPU int `json:"gpu"`
	// Throughput is the compute-speed multiplier; (0, 1].
	Throughput float64 `json:"throughput"`
}

// TransientFault injects per-transfer failure/retry cycles. Each attempt
// of a matching transfer fails independently with Probability; the k-th
// retry waits Backoff*2^(k-1) milliseconds, and the total wait is added
// to the transfer's setup latency (and reported as retry latency).
type TransientFault struct {
	// Match selects transfers whose route crosses the named resource
	// ("rc0", "gpu2.link", ...); "*" matches every transfer. The first
	// matching rule in spec order decides a transfer's fate.
	Match string `json:"match"`
	// Probability of each attempt failing; [0, 1).
	Probability float64 `json:"probability"`
	// BackoffMS is the initial retry backoff in milliseconds.
	BackoffMS float64 `json:"backoff_ms"`
	// MaxRetries caps injected failures per transfer (default 4).
	MaxRetries int `json:"max_retries,omitempty"`
}

// defaultMaxRetries caps injected failures when a rule leaves
// MaxRetries 0.
const defaultMaxRetries = 4

// maxRetriesCap bounds the exponential-backoff series; beyond this the
// injected latency dwarfs any step time and the spec is almost surely a
// mistake.
const maxRetriesCap = 16

// PlannerFault injects failures into the planning service's solver path
// (internal/plansvc): each solve attempt of a matching plan request
// suffers LatencyMS of injected solver latency and then fails
// transiently with Probability. Decisions are a pure function of (seed,
// request key, rule, attempt) — the same spec replays the same failures
// no matter how many goroutines drive the service or in which order
// requests coalesce.
type PlannerFault struct {
	// Match selects requests by model name ("15B"); "*" matches every
	// request. The first matching rule in spec order decides a request's
	// fate.
	Match string `json:"match"`
	// Probability of each solve attempt failing transiently; [0, 1).
	Probability float64 `json:"probability"`
	// LatencyMS is added to every matching solve attempt before the
	// solver runs, modeling a contended or slow planning backend.
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// MaxFailures caps injected failures per request (default 4): the
	// following attempt always reaches the real solver, so a retry loop
	// with enough budget eventually succeeds.
	MaxFailures int `json:"max_failures,omitempty"`
}

// PlannerAttempt decides the fate of one planning-service solve attempt
// (0-based) for the request identified by key — a stable hash of the
// content-addressed plan cache key — and its model name. It returns the
// injected solver latency in seconds and whether the attempt fails
// transiently. The first matching rule decides; a nil spec injects
// nothing.
func (s *Spec) PlannerAttempt(model string, key uint64, attempt int) (latencyS float64, fail bool) {
	if s == nil {
		return 0, false
	}
	// Salt separating the planner hash domain from transfer retries.
	const plannerSalt = 0x706c616e
	for ri, rule := range s.Planner {
		if rule.Match != "*" && rule.Match != model {
			continue
		}
		latencyS = rule.LatencyMS * 1e-3
		if rule.Probability <= 0 {
			return latencyS, false
		}
		max := rule.MaxFailures
		if max == 0 {
			max = defaultMaxRetries
		}
		if attempt >= max {
			return latencyS, false
		}
		fail = hash01(s.Seed, plannerSalt, uint64(ri), key, uint64(attempt)) < rule.Probability
		return latencyS, fail
	}
	return 0, false
}

// MemPressureFault withholds bytes from a memory pool, modeling co-tenant
// allocations. An allocation larger than the shrunken pool surfaces as a
// structured sim.OOMError instead of a deadlock.
type MemPressureFault struct {
	// Pool is the simulator pool name: "dram" or "gpu0.mem".
	Pool string `json:"pool"`
	// ReserveBytes is withheld from the pool's capacity; > 0.
	ReserveBytes float64 `json:"reserve_bytes"`
}

// Validate checks the spec against its documented ranges. It does not
// check names against a topology — that happens in Apply, where the
// server is known.
func (s *Spec) Validate() error {
	byLink := map[string][]LinkFault{}
	for i, l := range s.Links {
		if l.Link == "" {
			return fmt.Errorf("fault: links[%d]: missing link name", i)
		}
		if l.Multiplier <= 0 || l.Multiplier > 1 {
			return fmt.Errorf("fault: links[%d] (%s): multiplier %g out of range (0, 1]", i, l.Link, l.Multiplier)
		}
		if l.Start < 0 {
			return fmt.Errorf("fault: links[%d] (%s): negative start %g", i, l.Link, l.Start)
		}
		if l.End != 0 && l.End <= l.Start {
			return fmt.Errorf("fault: links[%d] (%s): window [%g, %g) is empty", i, l.Link, l.Start, l.End)
		}
		byLink[l.Link] = append(byLink[l.Link], l)
	}
	// Overlapping windows on one link would make the restore capacity
	// ambiguous; reject them.
	for link, ws := range byLink {
		sort.Slice(ws, func(i, j int) bool { return ws[i].Start < ws[j].Start })
		for i := 1; i < len(ws); i++ {
			prev := ws[i-1]
			if prev.End == 0 || ws[i].Start < prev.End {
				return fmt.Errorf("fault: link %q has overlapping degradation windows ([%g, %s) and [%g, ...))",
					link, prev.Start, endLabel(prev.End), ws[i].Start)
			}
		}
	}
	for i, g := range s.Stragglers {
		if g.GPU < 0 {
			return fmt.Errorf("fault: stragglers[%d]: negative gpu %d", i, g.GPU)
		}
		if g.Throughput <= 0 || g.Throughput > 1 {
			return fmt.Errorf("fault: stragglers[%d] (gpu %d): throughput %g out of range (0, 1]", i, g.GPU, g.Throughput)
		}
	}
	for i, tr := range s.Transient {
		if tr.Match == "" {
			return fmt.Errorf("fault: transient[%d]: missing match", i)
		}
		if tr.Probability < 0 || tr.Probability >= 1 {
			return fmt.Errorf("fault: transient[%d] (%s): probability %g out of range [0, 1)", i, tr.Match, tr.Probability)
		}
		if tr.Probability > 0 && tr.BackoffMS <= 0 {
			return fmt.Errorf("fault: transient[%d] (%s): backoff_ms must be positive", i, tr.Match)
		}
		if tr.MaxRetries < 0 || tr.MaxRetries > maxRetriesCap {
			return fmt.Errorf("fault: transient[%d] (%s): max_retries %d out of range [0, %d]", i, tr.Match, tr.MaxRetries, maxRetriesCap)
		}
	}
	for i, m := range s.MemPressure {
		if m.Pool == "" {
			return fmt.Errorf("fault: mem_pressure[%d]: missing pool name", i)
		}
		if m.ReserveBytes <= 0 {
			return fmt.Errorf("fault: mem_pressure[%d] (%s): reserve_bytes %g must be positive", i, m.Pool, m.ReserveBytes)
		}
	}
	for i, p := range s.Planner {
		if p.Match == "" {
			return fmt.Errorf("fault: planner[%d]: missing match", i)
		}
		if p.Probability < 0 || p.Probability >= 1 {
			return fmt.Errorf("fault: planner[%d] (%s): probability %g out of range [0, 1)", i, p.Match, p.Probability)
		}
		if p.LatencyMS < 0 {
			return fmt.Errorf("fault: planner[%d] (%s): negative latency_ms %g", i, p.Match, p.LatencyMS)
		}
		if p.MaxFailures < 0 || p.MaxFailures > maxRetriesCap {
			return fmt.Errorf("fault: planner[%d] (%s): max_failures %d out of range [0, %d]", i, p.Match, p.MaxFailures, maxRetriesCap)
		}
	}
	if err := s.validateCorruptions(); err != nil {
		return err
	}
	if err := s.validateServers(); err != nil {
		return err
	}
	if err := s.validateRestarts(); err != nil {
		return err
	}
	if err := s.validateStore(); err != nil {
		return err
	}
	return s.validatePermanent()
}

func endLabel(end float64) string {
	if end == 0 {
		return "inf"
	}
	return fmt.Sprintf("%g", end)
}

// Empty reports whether the spec injects nothing.
func (s *Spec) Empty() bool {
	return s == nil || (len(s.Links) == 0 && len(s.Stragglers) == 0 && len(s.Transient) == 0 &&
		len(s.MemPressure) == 0 && len(s.Corruptions) == 0 && len(s.Planner) == 0 &&
		len(s.GPUFails) == 0 && len(s.LinkFails) == 0 && len(s.ServerFails) == 0 &&
		len(s.StoreFaults) == 0 && len(s.ServerRestarts) == 0)
}

// Injection is the record of a spec bound to one server: what was applied
// and, after the simulation ran, what the transient-failure policy
// injected. One Injection belongs to one Sim and is not safe for
// concurrent use (the simulator itself is single-goroutine).
type Injection struct {
	// Spec is the applied scenario.
	Spec *Spec

	// LinkEvents counts scheduled capacity changes (degrade + restore).
	LinkEvents int
	// Stragglers counts slowed compute engines.
	Stragglers int
	// PoolsSqueezed counts shrunken memory pools.
	PoolsSqueezed int
	// PermanentFailures counts scheduled permanent failure events.
	PermanentFailures int

	// RetriedTransfers counts transfers that failed at least once.
	RetriedTransfers int
	// Retries is the total number of injected failed attempts.
	Retries int
	// RetryLatency is the total backoff wait injected, in seconds.
	RetryLatency float64

	// Corruptions counts delivery attempts the corruption policy
	// corrupted (detected or not — see sim.IntegrityStats for the split).
	Corruptions int
}

// String summarizes the injection for CLI output.
func (inj *Injection) String() string {
	s := fmt.Sprintf("faults: %d link events, %d stragglers, %d pools squeezed; %d transfers retried (%d retries, +%.1f ms backoff)",
		inj.LinkEvents, inj.Stragglers, inj.PoolsSqueezed, inj.RetriedTransfers, inj.Retries, inj.RetryLatency*1e3)
	if inj.Corruptions > 0 {
		s += fmt.Sprintf("; %d corrupted deliveries", inj.Corruptions)
	}
	if inj.PermanentFailures > 0 {
		s += fmt.Sprintf("; %d permanent failures scheduled", inj.PermanentFailures)
	}
	return s
}

// Apply validates spec and binds it to srv: capacity windows are scheduled
// on the named resources, straggler multipliers set on compute engines,
// the retry policy installed on the simulator, and memory pools shrunk.
// It must be called after hw.Build and before Sim.Run.
func Apply(srv *hw.Server, spec *Spec) (*Injection, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	inj := &Injection{Spec: spec}

	for i, l := range spec.Links {
		res := srv.ResourceByName(l.Link)
		if res == nil {
			return nil, fmt.Errorf("fault: links[%d]: no resource %q on topology %q (have %v)",
				i, l.Link, srv.Topo.Name, srv.ResourceNames())
		}
		nominal := res.Capacity()
		srv.Sim.ScheduleCapacity(res, l.Start, nominal*l.Multiplier)
		inj.LinkEvents++
		if l.End > 0 {
			srv.Sim.ScheduleCapacity(res, l.End, nominal)
			inj.LinkEvents++
		}
	}

	for i, g := range spec.Stragglers {
		if g.GPU >= len(srv.ComputeEngines) {
			return nil, fmt.Errorf("fault: stragglers[%d]: gpu %d out of range (topology %q has %d GPUs)",
				i, g.GPU, srv.Topo.Name, len(srv.ComputeEngines))
		}
		srv.ComputeEngines[g.GPU].SetThroughput(g.Throughput)
		inj.Stragglers++
	}

	for i, m := range spec.MemPressure {
		pool := srv.PoolByName(m.Pool)
		if pool == nil {
			return nil, fmt.Errorf("fault: mem_pressure[%d]: no pool %q on topology %q", i, m.Pool, srv.Topo.Name)
		}
		left := pool.Capacity() - m.ReserveBytes
		if left <= 0 {
			return nil, fmt.Errorf("fault: mem_pressure[%d]: reserving %.3g bytes empties pool %q (capacity %.3g)",
				i, m.ReserveBytes, m.Pool, pool.Capacity())
		}
		pool.SetCapacity(left)
		inj.PoolsSqueezed++
	}

	if err := applyPermanent(srv, spec, inj); err != nil {
		return nil, err
	}

	if len(spec.Transient) > 0 {
		srv.Sim.RetryPolicy = inj.retryPolicy
	}
	if len(spec.Corruptions) > 0 {
		srv.Sim.CorruptionPolicy = inj.corruptionPolicy
	}
	return inj, nil
}

// retryPolicy implements sim.RetryPolicy: the first rule matching the
// transfer's route decides its failures, drawn from the deterministic
// per-(seed, task, attempt) hash.
func (inj *Injection) retryPolicy(t *sim.Task) (int, sim.Time) {
	for ri, rule := range inj.Spec.Transient {
		if !matchesRoute(rule.Match, t.Path()) {
			continue
		}
		if rule.Probability <= 0 {
			return 0, 0
		}
		max := rule.MaxRetries
		if max == 0 {
			max = defaultMaxRetries
		}
		fails := 0
		for a := 0; a < max; a++ {
			if hash01(inj.Spec.Seed, uint64(t.ID()), uint64(ri), uint64(a)) >= rule.Probability {
				break
			}
			fails++
		}
		if fails > 0 {
			inj.RetriedTransfers++
			inj.Retries += fails
			backoff := rule.BackoffMS * 1e-3
			inj.RetryLatency += backoff * float64((uint64(1)<<fails)-1)
		}
		return fails, sim.Time(rule.BackoffMS * 1e-3)
	}
	return 0, 0
}

func matchesRoute(match string, path []sim.PathElem) bool {
	if match == "*" {
		return true
	}
	for _, pe := range path {
		if pe.Res.Name() == match {
			return true
		}
	}
	return false
}

// hash01 maps (seed, vals...) to a uniform float64 in [0, 1) via
// splitmix64, the standard 64-bit finalizer mix. It is the sole source of
// randomness in the package.
func hash01(seed int64, vals ...uint64) float64 {
	x := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, v := range vals {
		x += v + 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x ^= x >> 31
	}
	// Top 53 bits give a dyadic rational in [0, 1).
	return float64(x>>11) / (1 << 53)
}
