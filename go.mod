module mobius

go 1.22
