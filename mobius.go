// Package mobius is a complete, pure-Go reproduction of "Mobius: Fine
// Tuning Large-Scale Models on Commodity GPU Servers" (ASPLOS 2023).
//
// It provides:
//
//   - a discrete-event simulator of commodity and data-center GPU
//     servers (PCIe topology, root-complex contention, NVLink, DRAM);
//   - the Mobius pipeline with heterogeneous memory, its MIP partition
//     algorithm (solved by a built-in simplex + branch-and-bound MILP
//     solver) and the PCIe-topology-aware cross mapping;
//   - the evaluated baselines: GPipe, DeepSpeed pipeline parallelism and
//     DeepSpeed ZeRO-3 with heterogeneous memory;
//   - a real (small) GPT training substrate demonstrating that the
//     Mobius execution order converges identically to GPipe's.
//
// Quick start:
//
//	topo := mobius.Commodity(mobius.RTX3090Ti, 2, 2) // "Topo 2+2"
//	report, err := mobius.Run(mobius.SystemMobius, mobius.Options{
//		Model:    mobius.GPT15B,
//		Topology: topo,
//	})
//	fmt.Println(report) // per-step time, traffic, overlap stats
//
// The benchmark suite at the repository root regenerates every table and
// figure of the paper's evaluation; see EXPERIMENTS.md.
package mobius

import (
	"context"

	"mobius/internal/core"
	"mobius/internal/fault"
	"mobius/internal/hw"
	"mobius/internal/mapping"
	"mobius/internal/model"
	"mobius/internal/partition"
	"mobius/internal/trace"
)

// Re-exported core types. See the internal packages for full
// documentation of each.
type (
	// System identifies one of the four evaluated training systems.
	System = core.System
	// Options configures a planning + simulation run.
	Options = core.Options
	// StepReport is the measured outcome of one simulated training step.
	StepReport = core.StepReport
	// Plan is a Mobius execution plan (profile, partition, mapping).
	Plan = core.Plan
	// Topology describes a GPU server.
	Topology = hw.Topology
	// GPUSpec describes a GPU model.
	GPUSpec = hw.GPUSpec
	// ModelConfig describes a GPT-like workload (Table 3).
	ModelConfig = model.Config
	// CDF is a weighted cumulative distribution (bandwidth statistics).
	CDF = trace.CDF
	// FaultSpec is a declarative degraded-hardware scenario (link
	// bandwidth windows, straggler GPUs, transient transfer failures,
	// memory pressure) for Options.Faults.
	FaultSpec = fault.Spec
	// FaultInjection records an applied fault scenario and the retry
	// traffic it induced.
	FaultInjection = fault.Injection
)

// The four systems of the paper's evaluation.
const (
	SystemMobius     = core.SystemMobius
	SystemGPipe      = core.SystemGPipe
	SystemDSPipeline = core.SystemDSPipeline
	SystemDSHetero   = core.SystemDSHetero
)

// Partition algorithms (Figure 9 ablation).
const (
	PartitionMIP      = partition.AlgoMIP
	PartitionMaxStage = partition.AlgoMaxStage
	PartitionMinStage = partition.AlgoMinStage
	PartitionBalanced = partition.AlgoBalanced
)

// Mapping schemes (Figure 10 ablation).
const (
	MappingCross      = mapping.SchemeCross
	MappingSequential = mapping.SchemeSequential
)

// GPU presets (Table 1 / §4 setup).
var (
	RTX3090Ti = hw.RTX3090Ti
	V100      = hw.V100
	A100      = hw.A100
)

// Model presets (Table 3).
var (
	GPT3B  = model.GPT3B
	GPT8B  = model.GPT8B
	GPT15B = model.GPT15B
	GPT51B = model.GPT51B
)

// Table3 lists the four evaluation models in paper order.
func Table3() []ModelConfig { return model.Table3() }

// Systems lists the four evaluated systems in the paper's order.
func Systems() []System { return core.Systems() }

// Commodity builds a commodity GPU server with the given GPUs-per-root-
// complex groups, e.g. Commodity(RTX3090Ti, 2, 2) for "Topo 2+2".
func Commodity(spec GPUSpec, groups ...int) *Topology { return hw.Commodity(spec, groups...) }

// DataCenter builds an NVLink + GPUDirect-P2P server in the style of an
// EC2 P3.8xlarge.
func DataCenter(spec GPUSpec, n int, nvlinkBW float64) *Topology {
	return hw.DataCenter(spec, n, nvlinkBW)
}

// Run plans (when needed) and simulates one training step of the given
// system on the configured model and topology.
func Run(system System, opts Options) (*StepReport, error) { return core.Run(system, opts) }

// RunCtx is Run honoring a context for the planning phase: a deadline
// that expires mid-planning degrades the Mobius plan to the guaranteed-
// feasible greedy fallback instead of failing the run.
func RunCtx(ctx context.Context, system System, opts Options) (*StepReport, error) {
	return core.RunCtx(ctx, system, opts)
}

// PlanMobius profiles the model and computes the Mobius partition and
// mapping without running the simulation.
func PlanMobius(opts Options) (*Plan, error) { return core.PlanMobius(opts) }

// PlanMobiusCtx is PlanMobius honoring a context deadline; on expiry the
// plan degrades to the deterministic greedy fallback (Plan.Fallback
// reports it) rather than returning an error.
func PlanMobiusCtx(ctx context.Context, opts Options) (*Plan, error) {
	return core.PlanMobiusCtx(ctx, opts)
}

// ParseFaultSpec decodes and validates a JSON fault spec (see the fault
// package for the format).
func ParseFaultSpec(data []byte) (*FaultSpec, error) { return fault.ParseJSON(data) }

// HourlyPrice returns the topology's rental price per hour (Figure 15b).
func HourlyPrice(topo *Topology) float64 { return core.HourlyPrice(topo) }

// PricePerStep converts a step time into dollars per training step.
func PricePerStep(topo *Topology, stepTime float64) float64 {
	return core.PricePerStep(topo, stepTime)
}

// GB is one gigabyte (1e9 bytes), re-exported for topology construction.
const GB = hw.GB
