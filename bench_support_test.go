package mobius

// Substrate micro-benchmarks and shared helpers for the figure suite.

import (
	"testing"

	"mobius/internal/hw"
	"mobius/internal/lp"
	"mobius/internal/partition"
	"mobius/internal/sim"
	"mobius/internal/tensor"
)

// mipNoCacheOptions forces a fresh MIP solve (Figure 12 measures solver
// wall time) while keeping the sweep small enough to benchmark.
func mipNoCacheOptions() partition.MIPOptions {
	return partition.MIPOptions{DisableCache: true, MaxStages: 8}
}

// BenchmarkSubstrate_Simulator measures the discrete-event engine on a
// contended fan-out: 64 flows across two shared root complexes.
func BenchmarkSubstrate_Simulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := sim.New()
		rc1 := s.NewResource("rc1", 13.1e9)
		rc2 := s.NewResource("rc2", 13.1e9)
		for f := 0; f < 64; f++ {
			r := rc1
			if f%2 == 0 {
				r = rc2
			}
			s.Transfer("t", nil, sim.Path(r), float64(1+f)*1e8, f%3)
		}
		if _, err := s.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSubstrate_Simplex measures the LP core on a schedule-shaped
// program (precedence chain plus coupling constraints).
func BenchmarkSubstrate_Simplex(b *testing.B) {
	build := func() *lp.Problem {
		const n = 80
		p := lp.NewProblem(n)
		p.SetObjectiveCoeff(n-1, 1)
		for i := 1; i < n; i++ {
			p.AddConstraint([]lp.Term{{Var: i, Coeff: 1}, {Var: i - 1, Coeff: -1}}, lp.GE, 0.25)
		}
		for i := 0; i+10 < n; i += 5 {
			p.AddConstraint([]lp.Term{{Var: i + 10, Coeff: 1}, {Var: i, Coeff: -1}}, lp.LE, 10)
		}
		return p
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := build().Solve()
		if err != nil || sol.Status != lp.Optimal {
			b.Fatalf("solve failed: %v %v", err, sol)
		}
	}
}

// BenchmarkSubstrate_MatMul measures the parallel matmul kernel at a
// transformer-ish shape.
func BenchmarkSubstrate_MatMul(b *testing.B) {
	a := tensor.New(128, 256)
	c := tensor.New(256, 128)
	for i := range a.D {
		a.D[i] = float64(i%13) * 0.1
	}
	for i := range c.D {
		c.D[i] = float64(i%7) * 0.1
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMul(a, c)
	}
}

// BenchmarkSubstrate_Route measures topology routing, which sits on the
// hot path of schedule construction.
func BenchmarkSubstrate_Route(b *testing.B) {
	srv, err := hw.Build(hw.Commodity(hw.RTX3090Ti, 4, 4))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		srv.Route(hw.GPUEnd(i%8), hw.GPUEnd((i+3)%8))
	}
}
