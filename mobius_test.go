package mobius

import "testing"

func TestFacadeQuickstart(t *testing.T) {
	topo := Commodity(RTX3090Ti, 2, 2)
	report, err := Run(SystemMobius, Options{Model: GPT8B, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if report.OOM || report.StepTime <= 0 {
		t.Fatalf("unexpected report: %+v", report)
	}
	if report.Plan == nil || report.Plan.Partition.NumStages() == 0 {
		t.Fatal("missing plan")
	}
}

func TestFacadeConstantsConsistent(t *testing.T) {
	if len(Table3()) != 4 || len(Systems()) != 4 {
		t.Fatal("preset lists wrong")
	}
	if RTX3090Ti.MemBytes != 24*GB {
		t.Fatal("3090-Ti memory")
	}
	dc := DataCenter(V100, 4, 300*GB)
	if !dc.HasP2P() {
		t.Fatal("DC preset must support P2P")
	}
	if HourlyPrice(dc) <= HourlyPrice(Commodity(RTX3090Ti, 4)) {
		t.Fatal("price ordering")
	}
	if PricePerStep(dc, 0) != 0 {
		t.Fatal("zero step costs zero")
	}
}
